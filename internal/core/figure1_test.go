package core

import (
	"testing"

	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/fixtures"
	"repro/internal/rules"
)

// fig1Engine builds an engine over the paper's running example.
func fig1Engine(t *testing.T) (*Engine, *fixtures.Figure1) {
	t.Helper()
	f := fixtures.New()
	e, err := New(f.DB, f.Spec, f.Sims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e, f
}

// pairOf builds the eqrel pair for two named constants.
func pairOf(f *fixtures.Figure1, a, b string) eqrel.Pair {
	return eqrel.MakePair(f.Const(a), f.Const(b))
}

// m1 and m2 build the two maximal solutions of Example 4.
func m1(e *Engine, f *fixtures.Figure1) *eqrel.Partition {
	return e.FromPairs([]eqrel.Pair{
		pairOf(f, "a1", "a2"), pairOf(f, "a2", "a3"), // α, β
		pairOf(f, "c2", "c3"),                        // ζ
		pairOf(f, "p2", "p3"), pairOf(f, "p4", "p5"), // θ, λ
		pairOf(f, "a4", "a5"), // κ
	})
}

func m2(e *Engine, f *fixtures.Figure1) *eqrel.Partition {
	return e.FromPairs([]eqrel.Pair{
		pairOf(f, "a1", "a2"), pairOf(f, "a2", "a3"),
		pairOf(f, "c2", "c3"),
		pairOf(f, "p2", "p3"), pairOf(f, "a6", "a7"), // θ, χ
		pairOf(f, "a4", "a5"),
	})
}

// TestExample4MaximalSolutions verifies MaxSol(Dex, Σex) = {M1, M2}.
func TestExample4MaximalSolutions(t *testing.T) {
	e, f := fig1Engine(t)
	maximal, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(maximal) != 2 {
		for _, m := range maximal {
			t.Logf("maximal: %s", m.Format(f.DB.Interner()))
		}
		t.Fatalf("got %d maximal solutions, want 2", len(maximal))
	}
	w1, w2 := m1(e, f), m2(e, f)
	found1, found2 := false, false
	for _, m := range maximal {
		if m.Equal(w1) {
			found1 = true
		}
		if m.Equal(w2) {
			found2 = true
		}
	}
	if !found1 || !found2 {
		for _, m := range maximal {
			t.Logf("maximal: %s", m.Format(f.DB.Interner()))
		}
		t.Errorf("M1 found=%v, M2 found=%v", found1, found2)
	}
}

// TestExample4InitialState checks that the identity is not a solution
// (δ1 is violated by a1, a2, a3 all being first author of p1).
func TestExample4InitialState(t *testing.T) {
	e, _ := fig1Engine(t)
	id := e.Identity()
	ok, err := e.IsSolution(id)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("E0 must not be a solution: δ1 is initially violated")
	}
	viol, err := e.ViolatedDenials(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 1 || viol[0] != "delta1" {
		t.Errorf("violated denials = %v, want [delta1]", viol)
	}
}

// TestExample4ActivePairs checks the initially active pairs
// α, β, χ (σ2) and ζ, η (σ1).
func TestExample4ActivePairs(t *testing.T) {
	e, f := fig1Engine(t)
	act, err := e.ActivePairs(e.Identity())
	if err != nil {
		t.Fatal(err)
	}
	want := map[eqrel.Pair]string{
		pairOf(f, "a1", "a2"): "sigma2",
		pairOf(f, "a2", "a3"): "sigma2",
		pairOf(f, "a6", "a7"): "sigma2",
		pairOf(f, "c2", "c3"): "sigma1",
		pairOf(f, "c3", "c4"): "sigma1",
	}
	if len(act) != len(want) {
		t.Fatalf("got %d active pairs, want %d: %v", len(act), len(want), act)
	}
	for _, a := range act {
		rule, ok := want[a.Pair]
		if !ok {
			t.Errorf("unexpected active pair %v", a.Pair)
			continue
		}
		if a.Hard {
			t.Errorf("pair %v should be soft-active only", a.Pair)
		}
		found := false
		for _, r := range a.Rules {
			if r == rule {
				found = true
			}
		}
		if !found {
			t.Errorf("pair %v derived by %v, want %s", a.Pair, a.Rules, rule)
		}
	}
}

// TestExample4HardClosure: after α and β, hard rule ρ2 forces ζ, and
// after θ, hard rule ρ1 forces κ.
func TestExample4HardClosure(t *testing.T) {
	e, f := fig1Engine(t)
	E := e.FromPairs([]eqrel.Pair{pairOf(f, "a1", "a2"), pairOf(f, "a2", "a3")})
	ok, err := e.SatisfiesHard(E)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("E1 = {α, β} should violate hard rule ρ2")
	}
	if err := e.HardClose(E); err != nil {
		t.Fatal(err)
	}
	if !E.Same(f.Const("c2"), f.Const("c3")) {
		t.Error("hard closure of {α, β} must contain ζ = (c2, c3)")
	}
	// Now add θ; ρ1 forces κ.
	E.Add(pairOf(f, "p2", "p3"))
	if err := e.HardClose(E); err != nil {
		t.Fatal(err)
	}
	if !E.Same(f.Const("a4"), f.Const("a5")) {
		t.Error("hard closure after θ must contain κ = (a4, a5)")
	}
}

// TestExample4SolutionRecognition: E2 = {α, β, ζ} closure is a solution
// but not maximal; M1 is a maximal solution.
func TestExample4SolutionRecognition(t *testing.T) {
	e, f := fig1Engine(t)
	e2 := e.FromPairs([]eqrel.Pair{
		pairOf(f, "a1", "a2"), pairOf(f, "a2", "a3"), pairOf(f, "c2", "c3"),
	})
	ok, err := e.IsSolution(e2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("E2 should be a solution")
	}
	maxOK, err := e.IsMaximalSolution(e2)
	if err != nil {
		t.Fatal(err)
	}
	if maxOK {
		t.Error("E2 is not maximal (θ, λ, χ are addable)")
	}
	w1 := m1(e, f)
	ok, err = e.IsSolution(w1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("M1 should be a solution")
	}
	maxOK, err = e.IsMaximalSolution(w1)
	if err != nil {
		t.Fatal(err)
	}
	if !maxOK {
		t.Error("M1 should be maximal")
	}
}

// TestExample4NonCandidate: an equivalence relation whose merges cannot
// be derived by any rule is not a solution even if consistent.
func TestExample4NonCandidate(t *testing.T) {
	e, f := fig1Engine(t)
	// (a1, a4): no rule ever derives this pair.
	E := e.FromPairs([]eqrel.Pair{pairOf(f, "a1", "a4")})
	cand, err := e.IsCandidate(E)
	if err != nil {
		t.Fatal(err)
	}
	if cand {
		t.Error("(a1,a4) merge is not derivable, must not be a candidate")
	}
	ok, err := e.IsSolution(E)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("non-candidate accepted as solution")
	}
}

// TestExample4MixedSolutionViolation: extending M1 with χ violates δ2.
func TestExample4MixedSolutionViolation(t *testing.T) {
	e, f := fig1Engine(t)
	E := m1(e, f)
	E.Add(pairOf(f, "a6", "a7"))
	ok, err := e.SatisfiesDenials(E)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("M1 + χ should violate δ2")
	}
	// And extending {α,β,ζ} with both ζ and η violates δ3.
	E2 := e.FromPairs([]eqrel.Pair{
		pairOf(f, "a1", "a2"), pairOf(f, "a2", "a3"),
		pairOf(f, "c2", "c3"), pairOf(f, "c3", "c4"),
	})
	ok, err = e.SatisfiesDenials(E2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ζ + η should violate δ3 (a1 chairs c2 and wrote p6 at merged conference)")
	}
}

// TestExample6Merges verifies the certain/possible merge classification
// of Example 6.
func TestExample6Merges(t *testing.T) {
	e, f := fig1Engine(t)
	certain := []eqrel.Pair{
		pairOf(f, "a1", "a2"), pairOf(f, "a2", "a3"), // α, β
		pairOf(f, "c2", "c3"), pairOf(f, "p2", "p3"), // ζ, θ
		pairOf(f, "a4", "a5"), // κ
	}
	possibleOnly := []eqrel.Pair{
		pairOf(f, "a6", "a7"), pairOf(f, "p4", "p5"), // χ, λ
	}
	impossible := []eqrel.Pair{
		pairOf(f, "c3", "c4"), // η
		pairOf(f, "c2", "c4"),
		pairOf(f, "a1", "a4"),
	}
	for _, p := range certain {
		ok, err := e.IsCertainMerge(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("pair %v should be a certain merge", p)
		}
	}
	for _, p := range possibleOnly {
		cm, err := e.IsCertainMerge(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := e.IsPossibleMerge(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		if cm || !pm {
			t.Errorf("pair %v: certain=%v possible=%v, want possible only", p, cm, pm)
		}
	}
	for _, p := range impossible {
		pm, err := e.IsPossibleMerge(p.A, p.B)
		if err != nil {
			t.Fatal(err)
		}
		if pm {
			t.Errorf("pair %v should not be a possible merge", p)
		}
	}
}

// TestMergeSets checks the aggregate CertainMerges / PossibleMerges sets
// against Example 6 (including transitive closure pairs like (a1,a3)).
func TestMergeSets(t *testing.T) {
	e, f := fig1Engine(t)
	cm, err := e.CertainMerges()
	if err != nil {
		t.Fatal(err)
	}
	// α, β, (a1,a3), ζ, θ, κ = 6 pairs.
	if len(cm) != 6 {
		t.Errorf("got %d certain merges, want 6: %v", len(cm), cm)
	}
	pm, err := e.PossibleMerges()
	if err != nil {
		t.Fatal(err)
	}
	// certain plus χ and λ.
	if len(pm) != 8 {
		t.Errorf("got %d possible merges, want 8: %v", len(pm), pm)
	}
	has := func(ps []eqrel.Pair, want eqrel.Pair) bool {
		for _, p := range ps {
			if p == want {
				return true
			}
		}
		return false
	}
	if !has(cm, pairOf(f, "a1", "a3")) {
		t.Error("certain merges missing transitive pair (a1,a3)")
	}
	if has(cm, pairOf(f, "p4", "p5")) {
		t.Error("λ wrongly certain")
	}
	if !has(pm, pairOf(f, "p4", "p5")) || !has(pm, pairOf(f, "a6", "a7")) {
		t.Error("possible merges missing χ or λ")
	}
	if has(pm, pairOf(f, "c3", "c4")) {
		t.Error("η wrongly possible")
	}
}

// TestExistenceFigure1: solutions exist.
func TestExistenceFigure1(t *testing.T) {
	e, _ := fig1Engine(t)
	sol, ok, err := e.Existence()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || sol == nil {
		t.Fatal("Figure 1 instance should have solutions")
	}
	isSol, err := e.IsSolution(sol)
	if err != nil {
		t.Fatal(err)
	}
	if !isSol {
		t.Error("Existence witness is not a solution")
	}
}

// TestQueryAnswers exercises certain/possible answers over the running
// example (Definition 6).
func TestQueryAnswers(t *testing.T) {
	e, f := fig1Engine(t)
	in := f.DB.Interner()

	// "Some author id has both mnk emails" — true exactly in M2 (χ).
	qChi, err := rules.ParseQuery(
		`Author(x,"mnk@tku.jp",u), Author(x,"mnk@gm.com",u2)`, f.Schema, in, f.Sims)
	if err != nil {
		t.Fatal(err)
	}
	poss, err := e.IsPossibleAnswer(qChi, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := e.IsCertainAnswer(qChi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !poss || cert {
		t.Errorf("χ-query: possible=%v certain=%v, want possible only", poss, cert)
	}

	// "Some paper id has both Declarative ER titles" — true in both
	// maximal solutions (θ is certain).
	qTheta, err := rules.ParseQuery(
		`Paper(x,"Declarative ER",c), Paper(x,"Declarative ER (Ext Abst)",c2)`, f.Schema, in, f.Sims)
	if err != nil {
		t.Fatal(err)
	}
	cert, err = e.IsCertainAnswer(qTheta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cert {
		t.Error("θ-query should be certain")
	}

	// Unsatisfiable anywhere: a conference named PODS in 2019.
	qNo, err := rules.ParseQuery(`Conference(x,"PODS","2019")`, f.Schema, in, f.Sims)
	if err != nil {
		t.Fatal(err)
	}
	poss, err = e.IsPossibleAnswer(qNo, []db.Const{f.Const("c1")})
	if err != nil {
		t.Fatal(err)
	}
	if poss {
		t.Error("impossible answer reported possible")
	}

	// Non-Boolean: conferences with a chair. Representative answer is
	// the class {c2,c3}; expansion must include both.
	qChair, err := rules.ParseQuery(`(x) : Conference(x,n,y), Chair(x,a)`, f.Schema, in, f.Sims)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.CertainAnswers(qChair)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("certain chair answers = %v, want 2 tuples (c2, c3)", ans)
	}
	got := map[db.Const]bool{ans[0][0]: true, ans[1][0]: true}
	if !got[f.Const("c2")] || !got[f.Const("c3")] {
		t.Errorf("certain answers = %v, want {c2},{c3}", ans)
	}
}

// TestAnswersMonotoneUnderSolutions: a tuple answerable in the identity
// stays answerable in every solution (homomorphism preservation).
func TestAnswersMonotoneUnderSolutions(t *testing.T) {
	e, f := fig1Engine(t)
	q, err := rules.ParseQuery(`(x) : Wrote(p, x, z), CorrAuth(p, x)`, f.Schema, f.DB.Interner(), f.Sims)
	if err != nil {
		t.Fatal(err)
	}
	id := e.Identity()
	base, err := e.AnswersIn(q, id)
	if err != nil {
		t.Fatal(err)
	}
	maximal, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range maximal {
		for _, tuple := range base {
			ok, err := e.HoldsIn(q, tuple, m)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("answer %v lost in solution %s", tuple, m.Format(f.DB.Interner()))
			}
		}
	}
}
