package core

import (
	"context"
	"fmt"

	"repro/internal/eqrel"
	"repro/internal/limits"
)

// GreedySolution computes a single solution by greedy extension: from
// the hard closure of the identity, it repeatedly adds active pairs
// whose hard closure does not increase the number of violated denial
// constraints, until a fixpoint. The result is a solution whenever the
// final state is consistent (initial violations may be repaired along
// the way, e.g. FD violations resolved by merges).
//
// This is the scalable counterpart of MaximalSolutions: exact maximal
// enumeration is coNP-hard territory (Table 1), while the greedy pass
// runs in polynomial time and returns a solution that is maximal w.r.t.
// single-pair extension. It is used by the workload experiments, which
// mirror how the paper's envisioned prototype would be deployed on
// real ER benchmarks (Section 7).
func (e *Engine) GreedySolution() (*eqrel.Partition, bool, error) {
	return e.GreedySolutionCtx(context.Background())
}

// GreedySolutionCtx is GreedySolution with cancellation: the context is
// polled once per candidate pair, so a deadline interrupts the pass
// between extensions. The error matches limits.ErrCanceled (and the
// underlying context error) when the context fires.
func (e *Engine) GreedySolutionCtx(ctx context.Context) (*eqrel.Partition, bool, error) {
	E := e.Identity()
	if err := e.HardClose(E); err != nil {
		return nil, false, err
	}
	viol, err := e.ViolatedDenials(E)
	if err != nil {
		return nil, false, err
	}
	cur := len(viol)
	for {
		act, err := e.ActivePairs(E)
		if err != nil {
			return nil, false, err
		}
		progressed := false
		for _, a := range act {
			if err := ctx.Err(); err != nil {
				return nil, false, limits.Wrap(err)
			}
			if E.Same(a.Pair.A, a.Pair.B) {
				continue // merged by an earlier acceptance this sweep
			}
			cand := E.Clone()
			ru, rv := E.Rep(a.Pair.A), E.Rep(a.Pair.B)
			cand.Add(a.Pair)
			e.seedInduced(E, cand, ru, rv)
			if err := e.HardClose(cand); err != nil {
				return nil, false, err
			}
			v, err := e.ViolatedDenials(cand)
			if err != nil {
				return nil, false, err
			}
			if len(v) <= cur {
				E = cand
				cur = len(v)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return E, cur == 0, nil
}

// MustGreedySolution is GreedySolution returning an error when the
// greedy pass ends in an inconsistent state.
func (e *Engine) MustGreedySolution() (*eqrel.Partition, error) {
	E, ok, err := e.GreedySolution()
	if err != nil {
		return nil, err
	}
	if !ok {
		viol, _ := e.ViolatedDenials(E)
		return nil, fmt.Errorf("core: greedy pass ended with violated denials %v", viol)
	}
	return E, nil
}
