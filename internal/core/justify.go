package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/obs"
)

// StepKind distinguishes the two kinds of justification steps of
// Definition 4.
type StepKind int

// Justification step kinds.
const (
	// RuleApp is a rule application: the pair is produced by a rule
	// whose body is satisfied by original database facts, joined via
	// previously derived merges (Deps).
	RuleApp StepKind = iota
	// Transitive combines two earlier pairs sharing an endpoint.
	Transitive
)

// JustStep is one element (e_i, e'_i) of a justification sequence.
type JustStep struct {
	Pair eqrel.Pair
	Kind StepKind
	// RuleApp fields:
	Rule  string
	Facts []db.Fact
	Sims  []SimFact
	Deps  []eqrel.Pair // earlier merges used to join the facts
	// Transitive fields: the two earlier pairs being chained.
	Left, Right eqrel.Pair
}

// Justification is a sequence of steps ending in the target pair, each
// step supported by earlier steps per Definition 4.
type Justification struct {
	Target eqrel.Pair
	Steps  []JustStep
}

// Format renders the justification with constant names.
func (j *Justification) Format(in *db.Interner) string {
	var b strings.Builder
	name := func(c db.Const) string { return in.Name(c) }
	for i, s := range j.Steps {
		fmt.Fprintf(&b, "%2d. (%s,%s) ", i+1, name(s.Pair.A), name(s.Pair.B))
		switch s.Kind {
		case Transitive:
			fmt.Fprintf(&b, "by transitivity of (%s,%s) and (%s,%s)",
				name(s.Left.A), name(s.Left.B), name(s.Right.A), name(s.Right.B))
		default:
			fmt.Fprintf(&b, "by rule %s using", s.Rule)
			for _, f := range s.Facts {
				parts := make([]string, len(f.Args))
				for k, c := range f.Args {
					parts[k] = name(c)
				}
				fmt.Fprintf(&b, " %s(%s)", f.Rel, strings.Join(parts, ","))
			}
			for _, sf := range s.Sims {
				fmt.Fprintf(&b, " %s", sf)
			}
			if len(s.Deps) > 0 {
				b.WriteString(" joining via")
				for _, d := range s.Deps {
					fmt.Fprintf(&b, " (%s,%s)", name(d.A), name(d.B))
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// derivation is the replayed construction of a solution: a chronological
// log of rule applications, each valid at the time it was recorded.
type derivation struct {
	steps []JustStep // all RuleApp kind
	// edge index: constant -> adjacent (step index, other endpoint)
	adj map[db.Const][]edgeRef
}

type edgeRef struct {
	step  int
	other db.Const
}

// Replay reconstructs a derivation of the solution E: starting from the
// identity, it repeatedly applies rules (restricted to pairs of E) on
// the original database modulo the current relation, recording for every
// newly derived pair the rule, supporting facts, similarity atoms, and
// join dependencies. E must be a solution (or at least a candidate
// solution); otherwise an error is returned.
func (e *Engine) Replay(E *eqrel.Partition) (*derivation, error) {
	e.rec.Inc(obs.CoreJustifyReplays, 1)
	d := &derivation{adj: make(map[db.Const][]edgeRef)}
	cur := e.Identity()
	for {
		var stage []JustStep
		for _, r := range e.sess.spec.MergeRules() {
			err := e.relaxedMatches(r, cur, func(m relaxedMatch) bool {
				if m.headA == m.headB || cur.Same(m.headA, m.headB) {
					return true
				}
				if !E.Same(m.headA, m.headB) {
					return true // outside the target solution
				}
				stage = append(stage, JustStep{
					Pair:  eqrel.MakePair(m.headA, m.headB),
					Kind:  RuleApp,
					Rule:  r.Name,
					Facts: m.facts,
					Sims:  m.sims,
					Deps:  m.deps,
				})
				return true
			})
			if err != nil {
				return nil, err
			}
		}
		progressed := false
		for _, s := range stage {
			if cur.Same(s.Pair.A, s.Pair.B) {
				// Another step of this stage already merged the classes;
				// keep the first derivation only.
				continue
			}
			cur.Union(s.Pair.A, s.Pair.B)
			idx := len(d.steps)
			d.steps = append(d.steps, s)
			d.adj[s.Pair.A] = append(d.adj[s.Pair.A], edgeRef{idx, s.Pair.B})
			d.adj[s.Pair.B] = append(d.adj[s.Pair.B], edgeRef{idx, s.Pair.A})
			progressed = true
		}
		if !progressed {
			break
		}
	}
	if !cur.Equal(E) {
		return nil, fmt.Errorf("core: replay of %s did not reconstruct the solution (got %s); is it a candidate solution?",
			E, cur)
	}
	return d, nil
}

// Justify returns a Definition-4 justification for the merge (a, b)
// w.r.t. the solution E: a sequence of rule applications and transitive
// steps ending in {a, b}, in which every rule application's join
// dependencies appear earlier. Returns an error when (a, b) ∉ E or the
// replay fails.
func (e *Engine) Justify(E *eqrel.Partition, a, b db.Const) (*Justification, error) {
	sp := e.rec.Start(obs.SpanCoreJustify)
	defer sp.End()
	e.rec.Inc(obs.CoreJustifyChecks, 1)
	if a == b {
		return nil, fmt.Errorf("core: cannot justify a reflexive pair")
	}
	if !E.Same(a, b) {
		return nil, fmt.Errorf("core: pair (%d,%d) is not in the solution", a, b)
	}
	d, err := e.Replay(E)
	if err != nil {
		return nil, err
	}
	j := &Justification{Target: eqrel.MakePair(a, b)}
	emitted := make(map[eqrel.Pair]bool)

	// emitPair ensures the pair is justified using only derivation steps
	// with index < bound (math.MaxInt for the target). It returns the
	// last step proving the pair.
	var emitPair func(p eqrel.Pair, bound int) error
	emitStep := func(idx int) error {
		s := d.steps[idx]
		if emitted[s.Pair] {
			return nil
		}
		for _, dep := range s.Deps {
			if err := emitPair(dep, idx); err != nil {
				return err
			}
		}
		// Deps may already have marked the pair emitted via transitivity.
		if !emitted[s.Pair] {
			emitted[s.Pair] = true
			j.Steps = append(j.Steps, s)
		}
		return nil
	}
	emitPair = func(p eqrel.Pair, bound int) error {
		if p.A == p.B || emitted[p] {
			return nil
		}
		path, idxs := d.path(p.A, p.B, bound)
		if path == nil {
			return fmt.Errorf("core: internal error: no derivation path for (%d,%d)", p.A, p.B)
		}
		for _, idx := range idxs {
			if err := emitStep(idx); err != nil {
				return err
			}
		}
		// Chain transitivity along the path.
		prev := eqrel.MakePair(path[0], path[1])
		for i := 2; i < len(path); i++ {
			step := eqrel.MakePair(path[i-1], path[i])
			combined := eqrel.MakePair(path[0], path[i])
			if !emitted[combined] {
				emitted[combined] = true
				j.Steps = append(j.Steps, JustStep{
					Pair: combined, Kind: Transitive, Left: prev, Right: step,
				})
			}
			prev = combined
		}
		emitted[p] = true
		return nil
	}
	if err := emitPair(eqrel.MakePair(a, b), len(d.steps)); err != nil {
		return nil, err
	}
	e.rec.Observe(obs.HistCoreJustifySteps, time.Duration(int64(len(j.Steps))))
	return j, nil
}

// path finds a shortest edge path from a to b using steps with index <
// bound, returning the node sequence and the step index per edge.
func (d *derivation) path(a, b db.Const, bound int) ([]db.Const, []int) {
	if a == b {
		return []db.Const{a}, nil
	}
	type cameFrom struct {
		prev db.Const
		step int
	}
	from := map[db.Const]cameFrom{a: {prev: a, step: -1}}
	queue := []db.Const{a}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range d.adj[n] {
			if e.step >= bound {
				continue
			}
			if _, seen := from[e.other]; seen {
				continue
			}
			from[e.other] = cameFrom{prev: n, step: e.step}
			if e.other == b {
				var nodes []db.Const
				var steps []int
				for cur := b; cur != a; {
					cf := from[cur]
					nodes = append(nodes, cur)
					steps = append(steps, cf.step)
					cur = cf.prev
				}
				nodes = append(nodes, a)
				// reverse
				for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
					nodes[i], nodes[j] = nodes[j], nodes[i]
				}
				for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
					steps[i], steps[j] = steps[j], steps[i]
				}
				return nodes, steps
			}
			queue = append(queue, e.other)
		}
	}
	return nil, nil
}
