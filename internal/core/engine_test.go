package core

import (
	"errors"
	"testing"

	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/fixtures"
	"repro/internal/rules"
	"repro/internal/sim"
)

// tinySetup builds a schema/database/spec from source texts.
func tinySetup(t *testing.T, schemaFn func(*db.Schema), facts func(*db.Database), specSrc string, reg *sim.Registry) (*Engine, *db.Database) {
	t.Helper()
	s := db.NewSchema()
	schemaFn(s)
	d := db.New(s, nil)
	facts(d)
	spec, err := rules.ParseSpec(specSrc, s, d.Interner(), reg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(d, spec, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func lookup(t *testing.T, d *db.Database, name string) db.Const {
	t.Helper()
	c, ok := d.Interner().Lookup(name)
	if !ok {
		t.Fatalf("constant %q not interned", name)
	}
	return c
}

// TestNoSolution: an initially violated denial that no merge can repair
// yields an empty solution set, and certain/possible sets are empty.
func TestNoSolution(t *testing.T) {
	e, _ := tinySetup(t,
		func(s *db.Schema) {
			s.MustAdd("P", "a")
			s.MustAdd("Q", "a")
			s.MustAdd("R", "a", "b")
		},
		func(d *db.Database) {
			d.MustInsert("P", "x")
			d.MustInsert("Q", "x")
			d.MustInsert("R", "x", "y")
		},
		// The denial P(v) ∧ Q(v) is violated initially; the only rule
		// merges x and y, which cannot repair it.
		`soft R(x,y) ~> EQ(x,y).
		 denial P(v), Q(v).`,
		nil)
	_, ok, err := e.Existence()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unrepairable instance reported a solution")
	}
	maximal, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(maximal) != 0 {
		t.Errorf("got %d maximal solutions, want 0", len(maximal))
	}
	cm, err := e.CertainMerges()
	if err != nil {
		t.Fatal(err)
	}
	pm, err := e.PossibleMerges()
	if err != nil {
		t.Fatal(err)
	}
	if len(cm) != 0 || len(pm) != 0 {
		t.Errorf("merge sets nonempty without solutions: certain=%v possible=%v", cm, pm)
	}
}

// TestRepairByMerge: an initial FD violation that merges CAN repair —
// the heart of LACE's interaction between denials and merges.
func TestRepairByMerge(t *testing.T) {
	e, d := tinySetup(t,
		func(s *db.Schema) {
			s.MustAdd("R", "k", "v")
			s.MustAdd("S", "a", "b")
		},
		func(d *db.Database) {
			d.MustInsert("R", "k1", "u")
			d.MustInsert("R", "k1", "w")
			d.MustInsert("S", "u", "w")
		},
		`soft S(x,y) ~> EQ(x,y).
		 denial R(k,v), R(k,v2), v != v2.`,
		nil)
	id := e.Identity()
	ok, err := e.SatisfiesDenials(id)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("FD should be violated initially")
	}
	sol, exists, err := e.Existence()
	if err != nil {
		t.Fatal(err)
	}
	if !exists {
		t.Fatal("merging u and w repairs the FD; a solution must exist")
	}
	if !sol.Same(lookup(t, d, "u"), lookup(t, d, "w")) {
		t.Error("solution does not contain the repairing merge")
	}
	// The merge is certain: every solution needs it.
	cm, err := e.IsCertainMerge(lookup(t, d, "u"), lookup(t, d, "w"))
	if err != nil {
		t.Fatal(err)
	}
	if !cm {
		t.Error("repairing merge should be certain")
	}
}

// TestRecursiveMerges: merges trigger further merges through induced
// facts — the collective behaviour of Example 4 in miniature. Merging
// companies makes two people share an employer, which then merges them.
func TestRecursiveMerges(t *testing.T) {
	e, d := tinySetup(t,
		func(s *db.Schema) {
			s.MustAdd("Emp", "person", "company")
			s.MustAdd("SameCo", "c1", "c2")
		},
		func(d *db.Database) {
			d.MustInsert("Emp", "p1", "cA")
			d.MustInsert("Emp", "p2", "cB")
			d.MustInsert("SameCo", "cA", "cB")
		},
		`soft s1: SameCo(x,y) ~> EQ(x,y).
		 soft s2: Emp(x,c), Emp(y,c) ~> EQ(x,y).`,
		nil)
	// (p1,p2) is NOT active initially.
	act, err := e.ActivePairs(e.Identity())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range act {
		if a.Pair == eqrel.MakePair(lookup(t, d, "p1"), lookup(t, d, "p2")) {
			t.Fatal("(p1,p2) active before the company merge")
		}
	}
	// But it is a possible (indeed certain) merge thanks to the dynamic
	// semantics.
	ok, err := e.IsCertainMerge(lookup(t, d, "p1"), lookup(t, d, "p2"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("recursive merge not derived: dynamic semantics broken")
	}
}

// TestProp1Equivalence: Σ and its Proposition 1 transformation have
// identical solution sets on the Figure 1 database.
func TestProp1Equivalence(t *testing.T) {
	e, f := fig1Engine(t)
	tr := f.Spec.Prop1Transform()
	e2, err := New(f.DB, tr, f.Sims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	collect := func(en *Engine) map[string]bool {
		out := make(map[string]bool)
		if err := en.Solutions(func(E *eqrel.Partition) bool {
			out[E.Key()] = true
			return false
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	s1, s2 := collect(e), collect(e2)
	if len(s1) == 0 {
		t.Fatal("no solutions collected")
	}
	if len(s1) != len(s2) {
		t.Fatalf("solution counts differ: %d vs %d", len(s1), len(s2))
	}
	for k := range s1 {
		if !s2[k] {
			t.Fatal("transformed spec misses a solution")
		}
	}
}

// TestTheorem9HardOnly: with Γs = ∅ there is a unique maximal solution
// (the hard closure) or none.
func TestTheorem9HardOnly(t *testing.T) {
	e, d := tinySetup(t,
		func(s *db.Schema) {
			s.MustAdd("R", "a", "b")
			s.MustAdd("L", "a", "b")
		},
		func(d *db.Database) {
			d.MustInsert("L", "x", "y")
			d.MustInsert("L", "y", "z")
			d.MustInsert("R", "k", "x")
			d.MustInsert("R", "k", "z")
		},
		`hard L(x,y) => EQ(x,y).`,
		nil)
	maximal, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(maximal) != 1 {
		t.Fatalf("hard-only spec: %d maximal solutions, want 1", len(maximal))
	}
	m := maximal[0]
	if !m.Same(lookup(t, d, "x"), lookup(t, d, "z")) {
		t.Error("hard closure missing transitive merge (x,z)")
	}
	// All decision problems agree with the closure.
	ok, err := e.IsCertainMerge(lookup(t, d, "x"), lookup(t, d, "y"))
	if err != nil || !ok {
		t.Errorf("hard merge not certain: %v %v", ok, err)
	}
	// And with an unrepairable denial, no solution.
	e2, _ := tinySetup(t,
		func(s *db.Schema) {
			s.MustAdd("R", "a", "b")
			s.MustAdd("L", "a", "b")
		},
		func(d *db.Database) {
			d.MustInsert("L", "x", "y")
			d.MustInsert("R", "x", "y")
		},
		`hard L(x,y) => EQ(x,y).
		 denial R(a,b).`,
		nil)
	maximal, err = e2.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(maximal) != 0 {
		t.Error("inconsistent hard-only spec has a maximal solution")
	}
}

// TestTheorem9DenialFree: with Δ = ∅ the closure under all rules is the
// unique maximal solution.
func TestTheorem9DenialFree(t *testing.T) {
	e, d := tinySetup(t,
		func(s *db.Schema) {
			s.MustAdd("E", "a", "b")
			s.MustAdd("V", "a")
		},
		func(d *db.Database) {
			d.MustInsert("V", "u")
			d.MustInsert("V", "v")
			d.MustInsert("V", "w")
			d.MustInsert("E", "r", "u")
			d.MustInsert("E", "r", "v")
			d.MustInsert("E", "u", "w")
		},
		`soft E(z,x), E(z,y) ~> EQ(x,y).`,
		nil)
	maximal, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(maximal) != 1 {
		t.Fatalf("denial-free spec: %d maximal solutions, want 1", len(maximal))
	}
	m := maximal[0]
	// u ~ v directly; after u~v the facts E(u,w) and E(v?,...) — only
	// (u,v) and its consequences are derivable here.
	if !m.Same(lookup(t, d, "u"), lookup(t, d, "v")) {
		t.Error("(u,v) missing from the unique maximal solution")
	}
	// Certain merges equal the closure's pairs.
	cm, err := e.CertainMerges()
	if err != nil {
		t.Fatal(err)
	}
	if len(cm) != m.PairCount() {
		t.Errorf("certain merges %d != closure pairs %d", len(cm), m.PairCount())
	}
}

// TestRestrictedPruning: with inequality-free denials the searcher
// prunes inconsistent branches; results match the general path.
func TestRestrictedPruning(t *testing.T) {
	build := func() (*Engine, *db.Database) {
		return tinySetup(t,
			func(s *db.Schema) {
				s.MustAdd("S", "a", "b")
				s.MustAdd("Bad", "a")
			},
			func(d *db.Database) {
				d.MustInsert("S", "u", "v")
				d.MustInsert("S", "v", "w")
				d.MustInsert("Bad", "u")
				d.MustInsert("Bad", "w")
			},
			// Merging u..w creates Bad(u) twice — fine. The denial
			// forbids Bad(x) ∧ S(x,y) ∧ Bad(y) under merges: merging u,v
			// makes S(u,w) with Bad(u), Bad(w).
			`soft S(x,y) ~> EQ(x,y).
			 denial Bad(x), S(x,y), Bad(y).`,
			nil)
	}
	e, d := build()
	if !e.Spec().IsRestricted() {
		t.Fatal("spec should be restricted")
	}
	u, v, w := lookup(t, d, "u"), lookup(t, d, "v"), lookup(t, d, "w")
	// Initially consistent: S(u,v),S(v,w): Bad(u) ∧ S(u,v): v not Bad.
	ok, err := e.SatisfiesDenials(e.Identity())
	if err != nil || !ok {
		t.Fatalf("identity should be consistent: %v %v", ok, err)
	}
	// Merging (u,v) induces S(u,w): violation. So (u,v) possible?
	pm, err := e.IsPossibleMerge(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if pm {
		t.Error("(u,v) merge leads to a persistent violation; must be impossible")
	}
	pm, err = e.IsPossibleMerge(v, w)
	if err != nil {
		t.Fatal(err)
	}
	if pm {
		t.Error("(v,w) merge also induces the violation; must be impossible")
	}
	// The identity is the unique (maximal) solution.
	maximal, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(maximal) != 1 || !maximal[0].IsIdentity() {
		t.Errorf("maximal solutions = %v, want just the identity", maximal)
	}
	isMax, err := e.IsMaximalSolution(e.Identity())
	if err != nil || !isMax {
		t.Errorf("identity not recognized as maximal: %v %v", isMax, err)
	}
}

// TestBudgetExceeded: a tiny state budget aborts search with ErrBudget.
func TestBudgetExceeded(t *testing.T) {
	f := fixtures.New()
	e, err := New(f.DB, f.Spec, f.Sims, Options{MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.MaximalSolutions()
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// TestReflexiveRuleHead: EQ(x,x) rules are tolerated (their answers are
// reflexive pairs, which are never active).
func TestReflexiveRuleHead(t *testing.T) {
	e, _ := tinySetup(t,
		func(s *db.Schema) { s.MustAdd("V", "a") },
		func(d *db.Database) { d.MustInsert("V", "n") },
		`soft V(x), V(y) ~> EQ(x,x).`,
		nil)
	act, err := e.ActivePairs(e.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if len(act) != 0 {
		t.Errorf("reflexive rule produced active pairs: %v", act)
	}
	maximal, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	if len(maximal) != 1 || !maximal[0].IsIdentity() {
		t.Error("reflexive-only spec should have the identity as unique maximal solution")
	}
}

// TestSolutionsEnumerationCount verifies the Figure 1 solution count is
// stable (every subset of choices consistent with the constraints).
func TestSolutionsEnumerationCount(t *testing.T) {
	e, _ := fig1Engine(t)
	count := 0
	if err := e.Solutions(func(*eqrel.Partition) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	// Solutions: E2={α,β,ζ} (hard-closed base), +θκ, +λ, +χ, +θκλ,
	// +θκχ, +λχ?(no: δ2), ... enumerate: choices over {θ(→κ), λ, χ}
	// with λχ incompatible: subsets: {}, {θ}, {λ}, {χ}, {θ,λ}, {θ,χ}
	// = 6 solutions.
	if count != 6 {
		t.Errorf("got %d solutions, want 6", count)
	}
}
