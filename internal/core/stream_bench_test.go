package core

// stream_bench_test.go measures the payoff of the streaming layer: one
// iteration is one applied single-fact batch (alternately retracting
// and re-inserting the same Author fact) followed by a full resolve of
// the new epoch through a MutableSession — so the sharded planner
// re-runs, but untouched shards replay out of the cross-epoch solve
// cache and similarity verdicts come out of the shared memo tier. The
// baseline is the same instance resolved from scratch: a freshly
// generated dataset (cold similarity memos) on a fresh ShardedEngine
// with no solve cache.
//
// When LACE_BENCH_GUARD=1 (set by the CI stream job, not the normal
// test run), BenchmarkIncrementalUpdate writes BENCH_stream.json next
// to the package (committed, so the numbers travel with the repo) and
// fails unless the incremental batch-apply is at least 5x faster than
// the full rebuild at n=2000. The real gap is much wider; 5x is the
// floor that separates "incremental maintenance works" from "we are
// re-solving everything every epoch".

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/workload"
)

// streamBenchResult is the BENCH_stream.json schema.
type streamBenchResult struct {
	Entities          int     `json:"entities"`
	Facts             int     `json:"facts"`
	Epochs            int     `json:"epochs"`
	SecondsPerBatch   float64 `json:"seconds_per_batch"`
	SecondsPerRebuild float64 `json:"seconds_per_rebuild"`
	Speedup           float64 `json:"speedup"`
}

// streamBenchEntities keeps the benchmark and the guard description in
// one place: the workload size the 5x floor is pinned at.
const streamBenchEntities = 2000

// BenchmarkIncrementalUpdate: the guarded streaming benchmark.
func BenchmarkIncrementalUpdate(b *testing.B) {
	ctx := context.Background()
	cfg := workload.DefaultScaleConfig(20, streamBenchEntities)
	ds, err := workload.GenerateScale(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMutableSharded(ds.DB, ds.Spec, ds.Sims, Options{Parallelism: 1}, ShardOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Epoch 0 pays the full first resolve, warming the solve cache and
	// the shared similarity memo; it is not part of the measurement.
	if _, err := m.Snapshot().PossibleMergesCtx(ctx); err != nil {
		b.Fatal(err)
	}

	// The toggled fact: the first Author tuple, rendered to names so the
	// same FactSpec retracts and re-inserts it across epochs.
	tuples := ds.DB.Tuples("Author")
	if len(tuples) == 0 {
		b.Fatal("scale workload has no Author facts")
	}
	in := ds.DB.Interner()
	spec := db.FactSpec{Rel: "Author"}
	for _, c := range tuples[0] {
		spec.Args = append(spec.Args, in.Name(c))
	}

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		batch := Batch{Retract: []db.FactSpec{spec}}
		if i%2 == 1 {
			batch = Batch{Insert: []db.FactSpec{spec}}
		}
		res, snap, err := m.Apply(batch)
		if err != nil {
			b.Fatal(err)
		}
		if res.Inserted+res.Retracted != 1 {
			b.Fatalf("epoch %d: batch changed %d facts, want 1", res.Epoch, res.Inserted+res.Retracted)
		}
		if _, err := snap.PossibleMergesCtx(ctx); err != nil {
			b.Fatal(err)
		}
	}
	incTotal := time.Since(start)
	b.StopTimer()
	perBatch := incTotal.Seconds() / float64(b.N)
	b.ReportMetric(perBatch, "s/batch")

	if os.Getenv("LACE_BENCH_GUARD") != "1" || b.N < 2 {
		return
	}

	// Baseline: resolve the same instance from scratch. A fresh
	// GenerateScale call rebuilds the similarity registry too, so its
	// memo tier is cold, and the fresh ShardedEngine gets no solve
	// cache — exactly what every epoch would cost without the
	// streaming layer.
	const rebuilds = 2
	var rebuildTotal time.Duration
	for i := 0; i < rebuilds; i++ {
		cold, err := workload.GenerateScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		se, err := NewSharded(cold.DB, cold.Spec, cold.Sims, Options{Parallelism: 1}, ShardOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := se.PossibleMerges(); err != nil {
			b.Fatal(err)
		}
		rebuildTotal += time.Since(t0)
	}
	perRebuild := rebuildTotal.Seconds() / rebuilds

	res := streamBenchResult{
		Entities:          streamBenchEntities,
		Facts:             ds.DB.NumFacts(),
		Epochs:            b.N,
		SecondsPerBatch:   perBatch,
		SecondsPerRebuild: perRebuild,
		Speedup:           perRebuild / perBatch,
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_stream.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	if res.Speedup < 5 {
		b.Fatalf("incremental batch-apply only %.1fx faster than full rebuild (%.3fs vs %.3fs), want >= 5x",
			res.Speedup, perBatch, perRebuild)
	}
	b.Logf("guard: %.1fx (%.4fs/batch vs %.3fs/rebuild over %d epochs)",
		res.Speedup, perBatch, perRebuild, b.N)
}
