package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/limits"
	"repro/internal/obs"
)

// parTask is one node of the search lattice handed to a worker: a
// hard-closed candidate partition, exclusively owned by the consuming
// worker, plus its induced database. The induced database is frozen by
// the producer before the hand-off, so any number of workers may read
// it (and derive children from it) concurrently.
type parTask struct {
	E   *eqrel.Partition
	ind *db.Database // nil when E is the identity
}

// parSearcher explores the candidate-solution lattice with a pool of
// workers over a shared bounded work queue; it is the parallel
// counterpart of searcher.rec. Semantics mirror the sequential search:
// states are hard-closed and deduplicated by canonical partition key
// (a concurrent visited set), the state budget is an atomic counter,
// the first error cancels the whole run, and visits are serialized
// under a mutex so visitor callbacks never run concurrently and need no
// locking of their own. Only the visit order differs, so callers must
// accumulate order-independent results (sets, antichains, first-hit
// flags).
type parSearcher struct {
	e      *Engine
	ctx    context.Context
	cancel context.CancelFunc
	prune  bool
	budget int64

	tasks     chan parTask
	open      sync.WaitGroup // tasks queued or in flight
	states    atomic.Int64
	solutions atomic.Int64
	visited   sync.Map // canonical partition key -> struct{}

	visitMu sync.Mutex
	visit   func(E *eqrel.Partition) bool
	stopped bool // visitor requested stop; not an error

	errMu sync.Mutex
	err   error
}

// parWorker is one worker goroutine's state: its private evaluation
// Context (sliced induced-DB cache, forked sim memo) and its buffering
// recorder, flushed to the shared recorder when the worker exits.
type parWorker struct {
	s   *parSearcher
	cx  *Context
	rec *obs.Local
}

// parSolutions enumerates the solutions reachable from the hard closure
// of start using Options.Parallelism workers. See parSearcher for the
// visitor contract. The error is ErrBudget when the state budget was
// exhausted, ctx.Err() when the caller cancelled, nil when the space
// was fully explored or the visitor stopped the search.
func (e *Engine) parSolutions(ctx context.Context, start *eqrel.Partition, visit func(E *eqrel.Partition) bool) error {
	workers := e.sess.workers()
	// The base database is shared read-only by every worker from here
	// on: freeze it (eager indexes, inserts rejected) once per session.
	e.sess.freezeShared()
	e.rec.Gauge(obs.CoreSearchWorkers, int64(workers))
	sp := e.rec.Start(obs.SpanCoreSearch)

	// Root state: hard-close on the caller's context, then freeze its
	// induced database so the workers can share it.
	root := start.Clone()
	if err := e.HardClose(root); err != nil {
		sp.End()
		return err
	}
	var rootInd *db.Database
	if !root.IsIdentity() {
		rootInd = e.Induced(root)
		rootInd.Freeze()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s := &parSearcher{
		e:      e,
		ctx:    runCtx,
		cancel: cancel,
		prune:  e.sess.spec.IsRestricted(),
		budget: int64(e.sess.opts.MaxStates),
		tasks:  make(chan parTask, workers*64),
		visit:  visit,
	}
	s.open.Add(1)
	s.tasks <- parTask{E: root, ind: rootInd}

	var wg sync.WaitGroup
	ws := make([]*parWorker, workers)
	for i := 0; i < workers; i++ {
		w := &parWorker{s: s, rec: obs.NewLocal(e.rec)}
		w.cx = e.sess.newWorkerContext(workers, w.rec)
		ws[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range s.tasks {
				w.process(t)
				s.open.Done()
			}
		}()
	}
	// Close the queue once every submitted task has been processed;
	// workers then drain out of their range loops.
	go func() {
		s.open.Wait()
		close(s.tasks)
	}()
	wg.Wait()
	// Flush the worker buffers serially from this goroutine: e.rec may
	// itself be an obs.Local (a sharded solve running an inner parallel
	// search buffers through its shard worker's Local), so flushes must
	// not run concurrently.
	for _, w := range ws {
		w.rec.Flush()
	}

	sp.AttrInt("solutions", s.solutions.Load()).AttrInt("states", s.states.Load()).End()
	s.errMu.Lock()
	err := s.err
	s.errMu.Unlock()
	if err != nil {
		return err
	}
	if !s.stopped && ctx.Err() != nil {
		return limits.Wrap(ctx.Err())
	}
	return nil
}

// fail records the first error and cancels the run; queued tasks drain
// without doing work.
func (s *parSearcher) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.cancel()
}

// submit hands a child task to the pool, or processes it inline when
// the queue is full. The bounded queue plus inline fallback cannot
// deadlock: a send either succeeds immediately or the submitting worker
// makes progress itself, recursing depth-first like the sequential
// searcher.
func (s *parSearcher) submit(w *parWorker, t parTask) {
	s.open.Add(1)
	select {
	case s.tasks <- t:
	default:
		w.process(t)
		s.open.Done()
	}
}

// visitSolution runs the visitor under the serialization mutex,
// reporting whether the search should stop.
func (s *parSearcher) visitSolution(w *parWorker, E *eqrel.Partition) bool {
	s.visitMu.Lock()
	defer s.visitMu.Unlock()
	if s.stopped || s.ctx.Err() != nil {
		return true
	}
	s.solutions.Add(1)
	w.rec.Inc(obs.CoreSearchSolutions, 1)
	if s.visit(E) {
		s.stopped = true
		s.cancel()
		return true
	}
	return false
}

// process consumes one task: dedup, budget, consistency check, visit,
// then expansion of the active pairs into child tasks. It mirrors
// searcher.rec step for step.
func (w *parWorker) process(t parTask) {
	s := w.s
	if s.ctx.Err() != nil {
		return // cancelled: drain without work
	}
	E := t.E
	key := E.Key()
	if _, dup := s.visited.LoadOrStore(key, struct{}{}); dup {
		return
	}
	if s.states.Add(1) > s.budget {
		w.rec.Inc(obs.CoreSearchBudget, 1)
		s.fail(ErrBudget)
		return
	}
	w.rec.Inc(obs.CoreSearchStates, 1)
	w.rec.Inc(obs.CoreSearchTasks, 1)
	if t.ind != nil {
		// Warm this worker's cache with the producer's induced DB so
		// the consistency check and expansions below hit.
		w.cx.storeKey(key, t.ind)
	}

	consistent, err := w.cx.SatisfiesDenials(E)
	if err != nil {
		s.fail(err)
		return
	}
	if consistent {
		if s.visitSolution(w, E) {
			return
		}
	} else if s.prune {
		return
	}
	act, err := w.cx.ActivePairs(E)
	if err != nil {
		s.fail(err)
		return
	}
	for _, a := range act {
		if s.ctx.Err() != nil {
			return
		}
		child := E.Clone()
		u, v := E.Rep(a.Pair.A), E.Rep(a.Pair.B)
		child.Add(a.Pair)
		w.cx.seedInduced(E, child, u, v)
		if err := w.cx.HardClose(child); err != nil {
			s.fail(err)
			return
		}
		var ind *db.Database
		if !child.IsIdentity() {
			ind = w.cx.Induced(child)
			ind.Freeze()
		}
		s.submit(w, parTask{E: child, ind: ind})
	}
}
