package core

// mutable.go: the streaming layer. A MutableSession owns an epoch
// lineage of databases related by db.Apply — epoch 0 is the loaded
// instance, each applied fact batch produces epoch n+1 — and, per
// epoch, a fully-resolved snapshot handle. Readers take the current
// EpochSnapshot (one atomic load) and keep it for as long as they like;
// a writer applying the next batch never disturbs them, because every
// structure a snapshot reaches is frozen: the database (copy-on-write
// overlay over its parent), the engines, and any resolved shard
// results.
//
// Incrementality comes from three reuses, none of which weakens the
// exactness argument of DESIGN.md §11:
//   - db.Apply shares every untouched relation with the parent epoch
//     and clones the interner with ids preserved, so constant ids —
//     and everything keyed by them — stay valid along the lineage;
//   - the similarity memo's shared tier persists across epochs (minus
//     the entries Invalidate drops for retracted names), so verdicts
//     are computed once per lineage, not once per epoch;
//   - sharded snapshots share one ShardSolveCache, so a shard whose
//     projected instance a batch did not touch replays its solved
//     results instead of re-searching. Planning — the coupling
//     fixpoint that makes sharded ≡ monolithic — is re-run from
//     scratch every epoch; only solved search spaces are memoized.

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/rules"
	"repro/internal/sim"
)

// Batch is one atomic mutation: retractions apply first, then
// insertions. Either list may be empty; an empty batch still advances
// the epoch (with an unchanged fingerprint).
type Batch struct {
	Insert  []db.FactSpec `json:"insert,omitempty"`
	Retract []db.FactSpec `json:"retract,omitempty"`
}

// ApplyResult summarizes one applied batch.
type ApplyResult struct {
	// Epoch is the new epoch number (the first Apply yields 1).
	Epoch uint64
	// Inserted / Retracted count the facts actually added and removed
	// (no-op inserts of present facts and retracts of absent facts are
	// excluded).
	Inserted, Retracted int
	// Fingerprint is the new database's content fingerprint.
	Fingerprint string
	// DirtyShards is the number of the previous epoch's shard
	// components whose support mentions a constant of the batch — the
	// re-solve surface the batch dirtied. It is -1 when unavailable:
	// monolithic sessions, a previous epoch that never resolved, or a
	// previous epoch that fell back to a monolithic solve.
	DirtyShards int
}

// EpochSnapshot is one epoch's immutable resolution handle: the frozen
// database, its fingerprint, and the engines resolving it. Snapshots
// taken before a mutation keep answering against their own epoch.
//
// The result methods are safe for concurrent use: sharded resolution
// is once-guarded and its results are read-only afterwards, and the
// monolithic paths run on a private Fork per call.
type EpochSnapshot struct {
	epoch uint64
	d     *db.Database
	fp    string
	eng   *Engine
	se    *ShardedEngine // nil for monolithic sessions
}

// Epoch returns the snapshot's epoch number (0 for the initial load).
func (s *EpochSnapshot) Epoch() uint64 { return s.epoch }

// DB returns the snapshot's frozen database.
func (s *EpochSnapshot) DB() *db.Database { return s.d }

// Fingerprint returns the snapshot database's content fingerprint.
func (s *EpochSnapshot) Fingerprint() string { return s.fp }

// Engine returns the snapshot's monolithic engine. Callers running
// queries concurrently must Fork it per goroutine, as always.
func (s *EpochSnapshot) Engine() *Engine { return s.eng }

// Sharded returns the snapshot's sharded engine, nil for monolithic
// sessions.
func (s *EpochSnapshot) Sharded() *ShardedEngine { return s.se }

// sharded reports whether results should come from the sharded engine:
// it resolves (once) and checks the engine did not fall back to a
// monolithic solve. Reading se.mono after resolve is safe — sync.Once
// orders run's writes before every returning Do.
func (s *EpochSnapshot) sharded(ctx context.Context) (bool, error) {
	if s.se == nil {
		return false, nil
	}
	if err := s.se.resolve(ctx); err != nil {
		return false, err
	}
	return !s.se.mono, nil
}

// CertainMergesCtx returns the snapshot's certain merges.
func (s *EpochSnapshot) CertainMergesCtx(ctx context.Context) ([]eqrel.Pair, error) {
	sharded, err := s.sharded(ctx)
	if err != nil {
		return nil, err
	}
	if sharded {
		return s.se.CertainMergesCtx(ctx)
	}
	return s.eng.Fork().CertainMergesCtx(ctx)
}

// PossibleMergesCtx returns the snapshot's possible merges.
func (s *EpochSnapshot) PossibleMergesCtx(ctx context.Context) ([]eqrel.Pair, error) {
	sharded, err := s.sharded(ctx)
	if err != nil {
		return nil, err
	}
	if sharded {
		return s.se.PossibleMergesCtx(ctx)
	}
	return s.eng.Fork().PossibleMergesCtx(ctx)
}

// MaximalSolutionsCtx returns the snapshot's maximal solutions.
func (s *EpochSnapshot) MaximalSolutionsCtx(ctx context.Context) ([]*eqrel.Partition, error) {
	sharded, err := s.sharded(ctx)
	if err != nil {
		return nil, err
	}
	if sharded {
		return s.se.MaximalSolutionsCtx(ctx)
	}
	return s.eng.Fork().MaximalSolutionsCtx(ctx)
}

// ExistenceCtx reports whether the snapshot's instance has a solution.
func (s *EpochSnapshot) ExistenceCtx(ctx context.Context) (*eqrel.Partition, bool, error) {
	sharded, err := s.sharded(ctx)
	if err != nil {
		return nil, false, err
	}
	if sharded {
		return s.se.ExistenceCtx(ctx)
	}
	return s.eng.Fork().ExistenceCtx(ctx)
}

// MutableSession accepts batched fact mutations against a fixed
// specification and similarity registry, maintaining one resolved
// EpochSnapshot per epoch. Apply is single-writer (internally
// serialized); Snapshot may be called from any goroutine.
type MutableSession struct {
	spec    *rules.Spec
	sims    *sim.Registry
	opts    Options
	sharded bool
	sopts   ShardOptions

	mu  sync.Mutex // serializes Apply
	cur atomic.Pointer[EpochSnapshot]
}

// NewMutable builds a monolithic mutable session over the initial
// database (epoch 0). The database is frozen; all later epochs are
// copy-on-write overlays.
func NewMutable(d *db.Database, spec *rules.Spec, sims *sim.Registry, opts Options) (*MutableSession, error) {
	return newMutable(d, spec, sims, opts, false, ShardOptions{}, 0)
}

// NewMutableAt is NewMutable starting at a given epoch number instead
// of 0. Recovery uses it: a database rebuilt by replaying a write-ahead
// log through epoch N resumes its lineage at N, so the next Apply
// yields N+1 and epoch numbers stay aligned with the log.
func NewMutableAt(d *db.Database, spec *rules.Spec, sims *sim.Registry, opts Options, epoch uint64) (*MutableSession, error) {
	return newMutable(d, spec, sims, opts, false, ShardOptions{}, epoch)
}

// NewMutableSharded builds a sharded mutable session: every epoch is
// resolved by a ShardedEngine, and per-shard solves are shared across
// epochs through one ShardSolveCache (sopts.SolveCache, or a fresh
// cache of DefaultShardCacheSize entries when nil).
func NewMutableSharded(d *db.Database, spec *rules.Spec, sims *sim.Registry, opts Options, sopts ShardOptions) (*MutableSession, error) {
	return NewMutableShardedAt(d, spec, sims, opts, sopts, 0)
}

// NewMutableShardedAt is NewMutableSharded starting at a given epoch
// number, for resuming a recovered lineage.
func NewMutableShardedAt(d *db.Database, spec *rules.Spec, sims *sim.Registry, opts Options, sopts ShardOptions, epoch uint64) (*MutableSession, error) {
	if sopts.SolveCache == nil {
		sopts.SolveCache = NewShardSolveCache(DefaultShardCacheSize)
	}
	return newMutable(d, spec, sims, opts, true, sopts, epoch)
}

func newMutable(d *db.Database, spec *rules.Spec, sims *sim.Registry, opts Options, sharded bool, sopts ShardOptions, epoch uint64) (*MutableSession, error) {
	d.Freeze()
	m := &MutableSession{spec: spec, sims: sims, opts: opts, sharded: sharded, sopts: sopts}
	snap, err := m.newSnapshot(epoch, d)
	if err != nil {
		return nil, err
	}
	m.cur.Store(snap)
	return m, nil
}

// Snapshot returns the current epoch's snapshot. The caller may hold
// it across any number of subsequent Apply calls; it keeps answering
// against its own epoch.
func (m *MutableSession) Snapshot() *EpochSnapshot { return m.cur.Load() }

// Apply atomically applies one batch, producing the next epoch. On a
// validation error the batch is rejected whole and the current epoch
// is unchanged. The returned snapshot is the new current snapshot; its
// engines are built but not yet resolved — the first result call (or a
// background warmer) pays the resolve.
func (m *MutableSession) Apply(b Batch) (ApplyResult, *EpochSnapshot, error) {
	return m.ApplyDurable(b, nil)
}

// ApplyDurable is Apply with a precommit hook: after the next epoch is
// fully built but before it is published, precommit is called with the
// would-be result. If it returns an error the staged epoch is discarded
// — the session stays at the previous epoch and the error is returned.
// A write-ahead server passes the log append (+fsync) as precommit, so
// a batch is never observable by readers unless its record is durable.
//
// The hook runs under the writer lock; it must not call back into the
// session. Similarity-memo invalidation for retracted names happens
// before the hook, but that is only dropped memoization (verdicts are
// pure functions of the names), never visible state.
func (m *MutableSession) ApplyDurable(b Batch, precommit func(ApplyResult) error) (ApplyResult, *EpochSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.cur.Load()
	nd, ins, ret, err := db.Apply(prev.d, b.Insert, b.Retract)
	if err != nil {
		return ApplyResult{}, nil, err
	}
	if ret > 0 {
		// Hygiene: drop memoized similarity verdicts naming retracted
		// constants. Stale entries are never wrong (verdicts are pure
		// functions of the names), so over-retained names only cost
		// memory and over-dropped ones only cost recomputation.
		var names []string
		for _, f := range b.Retract {
			names = append(names, f.Args...)
		}
		m.sims.Invalidate(names...)
	}
	snap, err := m.newSnapshot(prev.epoch+1, nd)
	if err != nil {
		return ApplyResult{}, nil, err
	}
	res := ApplyResult{
		Epoch:       snap.epoch,
		Inserted:    ins,
		Retracted:   ret,
		Fingerprint: snap.fp,
		DirtyShards: -1,
	}
	if prev.se != nil {
		consts := make(map[db.Const]bool)
		in := nd.Interner()
		for _, fs := range [][]db.FactSpec{b.Insert, b.Retract} {
			for _, f := range fs {
				for _, n := range f.Args {
					if c, ok := in.Lookup(n); ok {
						consts[c] = true
					}
				}
			}
		}
		res.DirtyShards = prev.se.TouchedShards(consts)
	}
	if precommit != nil {
		if err := precommit(res); err != nil {
			return ApplyResult{}, nil, err
		}
	}
	m.cur.Store(snap)
	return res, snap, nil
}

// newSnapshot builds the engines for one epoch. The monolithic engine
// and the sharded engine hold separate Sessions over the same frozen
// database — Freeze is idempotent, so their freezeShared calls never
// race.
func (m *MutableSession) newSnapshot(epoch uint64, d *db.Database) (*EpochSnapshot, error) {
	eng, err := New(d, m.spec, m.sims, m.opts)
	if err != nil {
		return nil, err
	}
	snap := &EpochSnapshot{epoch: epoch, d: d, fp: d.Fingerprint(), eng: eng}
	if m.sharded {
		se, err := NewSharded(d, m.spec, m.sims, m.opts, m.sopts)
		if err != nil {
			return nil, err
		}
		snap.se = se
	}
	return snap, nil
}
