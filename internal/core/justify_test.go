package core

import (
	"strings"
	"testing"

	"repro/internal/eqrel"
)

// TestExample5JustifyZeta reproduces Example 5: the merge ζ = (c2, c3)
// has a one-step justification via σ1 supported by the two Conference
// facts and n2 ≈ n3.
func TestExample5JustifyZeta(t *testing.T) {
	e, f := fig1Engine(t)
	sol := m1(e, f)
	j, err := e.Justify(sol, f.Const("c2"), f.Const("c3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Steps) == 0 {
		t.Fatal("empty justification")
	}
	last := j.Steps[len(j.Steps)-1]
	if last.Pair != pairOf(f, "c2", "c3") {
		t.Fatalf("justification ends with %v, want (c2,c3)", last.Pair)
	}
	// The replay derives ζ in the first stage via σ1, so the
	// justification should be the one-step one of Example 5.
	if len(j.Steps) != 1 {
		t.Errorf("got %d steps, want the 1-step justification:\n%s",
			len(j.Steps), j.Format(f.DB.Interner()))
	}
	if last.Kind != RuleApp || last.Rule != "sigma1" {
		t.Errorf("step = %+v, want rule application of sigma1", last)
	}
	if len(last.Facts) != 2 {
		t.Errorf("supporting facts = %v, want the two Conference facts", last.Facts)
	}
	for _, fact := range last.Facts {
		if fact.Rel != "Conference" {
			t.Errorf("unexpected supporting fact %v", fact)
		}
	}
	if len(last.Sims) != 1 || last.Sims[0].Pred != "approx" {
		t.Errorf("sim facts = %v, want one approx fact", last.Sims)
	}
}

// TestJustifyKappa: κ = (a4, a5) needs θ = (p2, p3) first (ρ1 joins the
// two CorrAuth facts via the paper merge), and θ in turn needs ζ.
func TestJustifyKappa(t *testing.T) {
	e, f := fig1Engine(t)
	sol := m1(e, f)
	j, err := e.Justify(sol, f.Const("a4"), f.Const("a5"))
	if err != nil {
		t.Fatal(err)
	}
	last := j.Steps[len(j.Steps)-1]
	if last.Kind != RuleApp || last.Rule != "rho1" {
		t.Fatalf("κ must be justified by rho1, got %+v", last)
	}
	// Its dependencies must include the paper merge θ.
	foundTheta := false
	for _, d := range last.Deps {
		if d == pairOf(f, "p2", "p3") {
			foundTheta = true
		}
	}
	if !foundTheta {
		t.Errorf("κ's rule application should join via θ, deps = %v", last.Deps)
	}
	// And θ must be justified earlier in the sequence.
	seen := map[eqrel.Pair]int{}
	for i, s := range j.Steps {
		seen[s.Pair] = i
	}
	ti, ok := seen[pairOf(f, "p2", "p3")]
	if !ok {
		t.Fatal("θ not justified in the sequence")
	}
	if ti >= len(j.Steps)-1 {
		t.Error("θ justified after κ")
	}
	// θ's own step must depend on ζ (the conference merge joins the
	// Paper facts).
	theta := j.Steps[ti]
	foundZeta := false
	for _, d := range theta.Deps {
		if d == pairOf(f, "c2", "c3") {
			foundZeta = true
		}
	}
	if !foundZeta {
		t.Errorf("θ should join via ζ, deps = %v", theta.Deps)
	}
}

// TestJustifyTransitivePair: (a1, a3) is only in solutions via
// transitivity of α and β.
func TestJustifyTransitivePair(t *testing.T) {
	e, f := fig1Engine(t)
	sol := m1(e, f)
	j, err := e.Justify(sol, f.Const("a1"), f.Const("a3"))
	if err != nil {
		t.Fatal(err)
	}
	last := j.Steps[len(j.Steps)-1]
	if last.Pair != pairOf(f, "a1", "a3") {
		t.Fatalf("last step %v, want (a1,a3)", last.Pair)
	}
	if last.Kind != Transitive {
		t.Fatalf("expected a transitivity step, got %+v", last)
	}
	// Both α and β must appear earlier.
	var haveAlpha, haveBeta bool
	for _, s := range j.Steps[:len(j.Steps)-1] {
		if s.Pair == pairOf(f, "a1", "a2") {
			haveAlpha = true
		}
		if s.Pair == pairOf(f, "a2", "a3") {
			haveBeta = true
		}
	}
	if !haveAlpha || !haveBeta {
		t.Errorf("transitive justification missing α or β:\n%s", j.Format(f.DB.Interner()))
	}
}

// TestJustificationSoundness: in every justification, each rule
// application's dependencies are justified by strictly earlier steps,
// and every step's pair is in the solution.
func TestJustificationSoundness(t *testing.T) {
	e, f := fig1Engine(t)
	sol := m1(e, f)
	for _, p := range sol.Pairs() {
		j, err := e.Justify(sol, p.A, p.B)
		if err != nil {
			t.Fatalf("justify %v: %v", p, err)
		}
		pos := map[eqrel.Pair]int{}
		for i, s := range j.Steps {
			if !sol.Same(s.Pair.A, s.Pair.B) {
				t.Errorf("step pair %v not in solution", s.Pair)
			}
			switch s.Kind {
			case RuleApp:
				for _, d := range s.Deps {
					di, ok := pos[d]
					if !ok || di >= i {
						t.Errorf("justify %v: dep %v of step %d not justified earlier", p, d, i)
					}
				}
				// Supporting facts must be original database facts.
				for _, fact := range s.Facts {
					if !f.DB.Contains(fact.Rel, fact.Args...) {
						t.Errorf("witness fact %v not in the original database", fact)
					}
				}
			case Transitive:
				li, lok := pos[s.Left]
				ri, rok := pos[s.Right]
				if !lok || !rok || li >= i || ri >= i {
					t.Errorf("justify %v: transitive step %d uses unjustified pairs", p, i)
				}
				// The chained pairs must share an endpoint.
				share := s.Left.A == s.Right.A || s.Left.A == s.Right.B ||
					s.Left.B == s.Right.A || s.Left.B == s.Right.B
				if !share {
					t.Errorf("transitive step %v from disjoint pairs %v, %v", s.Pair, s.Left, s.Right)
				}
			}
			pos[s.Pair] = i
		}
		if j.Steps[len(j.Steps)-1].Pair != p {
			t.Errorf("justification for %v ends with %v", p, j.Steps[len(j.Steps)-1].Pair)
		}
	}
}

// TestJustifyErrors: reflexive and out-of-solution pairs are rejected.
func TestJustifyErrors(t *testing.T) {
	e, f := fig1Engine(t)
	sol := m1(e, f)
	if _, err := e.Justify(sol, f.Const("a1"), f.Const("a1")); err == nil {
		t.Error("reflexive justification accepted")
	}
	if _, err := e.Justify(sol, f.Const("a6"), f.Const("a7")); err == nil {
		t.Error("justified a pair outside the solution (χ ∉ M1)")
	}
}

// TestReplayReconstructsSolutions: replay rebuilds each maximal solution
// exactly.
func TestReplayReconstructsSolutions(t *testing.T) {
	e, _ := fig1Engine(t)
	maximal, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range maximal {
		d, err := e.Replay(m)
		if err != nil {
			t.Fatal(err)
		}
		// The union of all derived pairs must close to the solution.
		got := e.Identity()
		for _, s := range d.steps {
			got.Add(s.Pair)
		}
		if !got.Equal(m) {
			t.Errorf("replay steps close to %v, want %v", got, m)
		}
	}
}

// TestReplayRejectsNonCandidate: replay of an arbitrary equivalence
// relation must fail.
func TestReplayRejectsNonCandidate(t *testing.T) {
	e, f := fig1Engine(t)
	bogus := e.FromPairs([]eqrel.Pair{pairOf(f, "a1", "a4")})
	if _, err := e.Replay(bogus); err == nil {
		t.Error("replay of a non-candidate succeeded")
	}
}

// TestJustificationFormat is a smoke test for the human-readable form.
func TestJustificationFormat(t *testing.T) {
	e, f := fig1Engine(t)
	sol := m1(e, f)
	j, err := e.Justify(sol, f.Const("a4"), f.Const("a5"))
	if err != nil {
		t.Fatal(err)
	}
	out := j.Format(f.DB.Interner())
	for _, want := range []string{"rho1", "CorrAuth", "(a4,a5)"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted justification missing %q:\n%s", want, out)
		}
	}
}
