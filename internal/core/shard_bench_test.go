package core

// shard_bench_test.go measures end-to-end sharded resolution on the
// scale workload: one iteration is one complete resolve — component
// seeding, the stitch fixpoint with its per-shard solves, and the
// merge-set composition — of a fresh ShardedEngine over a 2000-entity
// Zipf-skewed instance.
//
// When LACE_BENCH_GUARD=1 (set by the CI shard job, not by the normal
// test run), BenchmarkShardWorkload additionally writes
// BENCH_shard.json next to the package (committed, unlike the serve
// benchmark's artifact, so the scaling numbers travel with the repo)
// and fails if throughput drops more than 25% below the committed
// floor in testdata/shard_bench_baseline.json. The floor is
// deliberately conservative (about a third of a single-core container
// run) so the guard trips on real regressions, not on CI noise.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/workload"
)

// shardBenchResult is the BENCH_shard.json schema.
type shardBenchResult struct {
	Entities       int     `json:"entities"`
	Facts          int     `json:"facts"`
	Shards         int     `json:"shards"`
	Rounds         int     `json:"rounds"`
	Solves         int     `json:"solves"`
	SecondsPerRun  float64 `json:"seconds_per_resolve"`
	EntitiesPerSec float64 `json:"entities_per_sec"`
}

type shardBenchBaseline struct {
	EntitiesPerSec float64 `json:"entities_per_sec"`
}

// BenchmarkShardWorkload: the guarded sharded-resolution benchmark.
func BenchmarkShardWorkload(b *testing.B) {
	const entities = 2000
	ds, err := workload.GenerateScale(workload.DefaultScaleConfig(20, entities))
	if err != nil {
		b.Fatal(err)
	}
	var last ShardStats
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		se, err := NewSharded(ds.DB, ds.Spec, ds.Sims, Options{Parallelism: 1}, ShardOptions{})
		if err != nil {
			b.Fatal(err)
		}
		pm, err := se.PossibleMerges()
		if err != nil {
			b.Fatal(err)
		}
		if len(pm) == 0 {
			b.Fatal("scale workload resolved to zero possible merges")
		}
		if last, err = se.Stats(); err != nil {
			b.Fatal(err)
		}
	}
	total := time.Since(start)
	b.StopTimer()

	res := shardBenchResult{
		Entities:       entities,
		Facts:          ds.DB.NumFacts(),
		Shards:         last.Shards,
		Rounds:         last.Rounds,
		Solves:         last.Solves,
		SecondsPerRun:  total.Seconds() / float64(b.N),
		EntitiesPerSec: float64(entities) * float64(b.N) / total.Seconds(),
	}
	b.ReportMetric(res.EntitiesPerSec, "entities/s")
	b.ReportMetric(res.SecondsPerRun, "s/resolve")

	// The guard needs more than the runner's single-iteration probe pass
	// (the CI job runs with -benchtime=3x).
	if os.Getenv("LACE_BENCH_GUARD") != "1" || b.N < 2 {
		return
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_shard.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	baseRaw, err := os.ReadFile("testdata/shard_bench_baseline.json")
	if err != nil {
		b.Fatal(err)
	}
	var base shardBenchBaseline
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		b.Fatal(err)
	}
	if floor := base.EntitiesPerSec * 0.75; res.EntitiesPerSec < floor {
		b.Fatalf("throughput regression: %.1f entities/s < %.1f (75%% of committed %.1f baseline)",
			res.EntitiesPerSec, floor, base.EntitiesPerSec)
	}
	b.Logf("guard: %.1f entities/s >= 75%% of %.1f baseline (%d shards, %d solves)",
		res.EntitiesPerSec, base.EntitiesPerSec, res.Shards, res.Solves)
}

// TestShardBenchBaselineReadable pins the committed baseline's shape so
// a malformed edit fails fast rather than in the guarded CI job.
func TestShardBenchBaselineReadable(t *testing.T) {
	raw, err := os.ReadFile("testdata/shard_bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base shardBenchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.EntitiesPerSec <= 0 {
		t.Fatalf("baseline entities_per_sec = %v, want positive", base.EntitiesPerSec)
	}
	_ = fmt.Sprintf("%v", base)
}
