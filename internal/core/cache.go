package core

import "repro/internal/db"

// inducedCache is an LRU cache from partition keys to induced
// databases. When full it evicts exactly one entry (the least recently
// used), so a long search keeps its working set warm instead of losing
// the whole cache to a wholesale flush.
type inducedCache struct {
	max        int
	m          map[string]*cacheEntry
	head, tail *cacheEntry // head = most recently used
}

type cacheEntry struct {
	key        string
	ind        *db.Database
	prev, next *cacheEntry
}

func newInducedCache(max int) *inducedCache {
	if max < 1 {
		max = 1
	}
	// The map grows on demand: preallocating max buckets would cost
	// ~50 B/entry up front even for engines that never fill the cache.
	return &inducedCache{max: max, m: make(map[string]*cacheEntry)}
}

func (c *inducedCache) len() int { return len(c.m) }

// get returns the cached induced database for key, marking it most
// recently used.
func (c *inducedCache) get(key string) (*db.Database, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.moveToFront(e)
	return e.ind, true
}

// put inserts or refreshes key, returning the number of entries evicted
// (0 or 1).
func (c *inducedCache) put(key string, ind *db.Database) int {
	if e, ok := c.m[key]; ok {
		e.ind = ind
		c.moveToFront(e)
		return 0
	}
	evicted := 0
	if len(c.m) >= c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		evicted = 1
	}
	e := &cacheEntry{key: key, ind: ind}
	c.m[key] = e
	c.pushFront(e)
	return evicted
}

func (c *inducedCache) reset() {
	c.m = make(map[string]*cacheEntry)
	c.head, c.tail = nil, nil
}

func (c *inducedCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *inducedCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *inducedCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
