package core

import (
	"repro/internal/eqrel"
	"repro/internal/obs"
)

// searcher performs depth-first exploration of the candidate-solution
// lattice. States are hard-closed candidate solutions, deduplicated by
// their canonical partition key. Children extend a state by one
// soft-active pair followed by hard closure; by the monotonicity of
// activity (rule bodies are negation-free) every solution is reachable
// this way.
type searcher struct {
	e       *Engine
	visited map[string]bool
	budget  int
	// prune enables the restricted-fragment optimization: when no
	// denial constraint uses inequalities, violations persist under
	// growth, so inconsistent states cannot lead to solutions.
	prune bool
	// goal, when non-nil, lets the visitor stop the search.
	visit func(E *eqrel.Partition) (stop bool, err error)
}

func (e *Engine) newSearcher(visit func(*eqrel.Partition) (bool, error)) *searcher {
	return &searcher{
		e:       e,
		visited: make(map[string]bool),
		budget:  e.opts.MaxStates,
		prune:   e.spec.IsRestricted(),
		visit:   visit,
	}
}

// run explores from the hard closure of start. It returns ErrBudget when
// the state budget is exhausted (results so far are incomplete).
func (s *searcher) run(start *eqrel.Partition) error {
	root := start.Clone()
	if err := s.e.HardClose(root); err != nil {
		return err
	}
	_, err := s.rec(root)
	return err
}

func (s *searcher) rec(E *eqrel.Partition) (stop bool, err error) {
	key := E.Key()
	if s.visited[key] {
		return false, nil
	}
	if len(s.visited) >= s.budget {
		s.e.rec.Inc(obs.CoreSearchBudget, 1)
		return true, ErrBudget
	}
	s.visited[key] = true
	s.e.rec.Inc(obs.CoreSearchStates, 1)

	consistent, err := s.e.SatisfiesDenials(E)
	if err != nil {
		return true, err
	}
	if consistent {
		// Hard rules are satisfied by construction (states are
		// hard-closed), and every state is a candidate solution, so a
		// consistent state is a solution.
		if stop, err := s.visit(E); stop || err != nil {
			return true, err
		}
	} else if s.prune {
		// Restricted specifications: denial violations are preserved
		// under further merges (no inequality atoms), so no descendant
		// can be a solution.
		return false, nil
	}
	act, err := s.e.ActivePairs(E)
	if err != nil {
		return true, err
	}
	for _, a := range act {
		// Hard-active pairs cannot appear here: E is hard-closed.
		child := E.Clone()
		u, v := E.Rep(a.Pair.A), E.Rep(a.Pair.B)
		child.Add(a.Pair)
		s.e.seedInduced(E, child, u, v)
		if err := s.e.HardClose(child); err != nil {
			return true, err
		}
		if stop, err := s.rec(child); stop || err != nil {
			return true, err
		}
	}
	return false, nil
}

// Solutions enumerates solutions of (D, Σ), invoking visit for each (the
// partition is live; clone to retain). Enumeration stops early when
// visit returns true. The error is ErrBudget when the search budget was
// exhausted before the space was fully explored.
func (e *Engine) Solutions(visit func(E *eqrel.Partition) bool) error {
	sp := e.rec.Start(obs.SpanCoreSearch)
	count := 0
	s := e.newSearcher(func(E *eqrel.Partition) (bool, error) {
		count++
		e.rec.Inc(obs.CoreSearchSolutions, 1)
		if visit(E) {
			return true, nil
		}
		if e.opts.MaxSolutions > 0 && count >= e.opts.MaxSolutions {
			return true, nil
		}
		return false, nil
	})
	err := s.run(e.Identity())
	sp.AttrInt("solutions", int64(count)).AttrInt("states", int64(len(s.visited))).End()
	return err
}

// Existence decides whether Sol(D, Σ) ≠ ∅ and returns a witness
// solution when one exists (Theorem 2: NP-complete in general). For
// restricted specifications it uses the polynomial algorithm of
// Theorem 8 instead of search.
func (e *Engine) Existence() (*eqrel.Partition, bool, error) {
	if e.spec.IsRestricted() {
		return e.existenceRestricted()
	}
	var found *eqrel.Partition
	err := e.Solutions(func(E *eqrel.Partition) bool {
		found = E.Clone()
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return found, found != nil, nil
}

// existenceRestricted implements Theorem 8: with inequality-free denial
// constraints, a solution exists iff the hard closure of the identity is
// consistent (every solution contains it, and violations persist).
func (e *Engine) existenceRestricted() (*eqrel.Partition, bool, error) {
	h := e.Identity()
	if err := e.HardClose(h); err != nil {
		return nil, false, err
	}
	ok, err := e.SatisfiesDenials(h)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return h, true, nil
}

// MaximalSolutions returns all ⊆-maximal solutions. For the tractable
// classes of Theorem 9 (no soft rules, or no denial constraints) the
// unique maximal solution is computed directly; otherwise the solution
// space is enumerated and filtered to its maximal antichain.
func (e *Engine) MaximalSolutions() ([]*eqrel.Partition, error) {
	sp := e.rec.Start(obs.SpanCoreMaxSol)
	defer sp.End()
	if sol, ok, err, done := e.uniqueMaximal(); done {
		if err != nil || !ok {
			return nil, err
		}
		return []*eqrel.Partition{sol}, nil
	}
	var maximal []*eqrel.Partition
	err := e.Solutions(func(E *eqrel.Partition) bool {
		for i := 0; i < len(maximal); i++ {
			if E.Subset(maximal[i]) {
				return false // dominated
			}
		}
		kept := maximal[:0]
		for _, m := range maximal {
			if !m.ProperSubset(E) {
				kept = append(kept, m)
			}
		}
		maximal = append(kept, E.Clone())
		return false
	})
	if err != nil {
		return nil, err
	}
	return maximal, nil
}

// uniqueMaximal handles the Theorem 9 fragments. done is false when the
// specification is not in a tractable class.
func (e *Engine) uniqueMaximal() (sol *eqrel.Partition, ok bool, err error, done bool) {
	switch {
	case e.spec.IsHardOnly():
		// Γs = ∅: the hard closure of the identity is the unique
		// solution candidate; it is a solution iff consistent.
		h := e.Identity()
		if err := e.HardClose(h); err != nil {
			return nil, false, err, true
		}
		cons, err := e.SatisfiesDenials(h)
		if err != nil {
			return nil, false, err, true
		}
		return h, cons, nil, true
	case e.spec.IsDenialFree():
		// Δ = ∅: the closure under all rules is the unique maximal
		// solution and always exists.
		h := e.Identity()
		if err := e.AllClose(h); err != nil {
			return nil, false, err, true
		}
		return h, true, nil, true
	}
	return nil, false, nil, false
}

// IsMaximalSolution decides MaxRec (Theorem 3: coNP-complete in
// general; Theorem 8: polynomial for restricted specifications).
func (e *Engine) IsMaximalSolution(E *eqrel.Partition) (bool, error) {
	isSol, err := e.IsSolution(E)
	if err != nil || !isSol {
		return false, err
	}
	act, err := e.ActivePairs(E)
	if err != nil {
		return false, err
	}
	for _, a := range act {
		ext := E.Clone()
		u, v := E.Rep(a.Pair.A), E.Rep(a.Pair.B)
		ext.Add(a.Pair)
		e.seedInduced(E, ext, u, v)
		if err := e.HardClose(ext); err != nil {
			return false, err
		}
		if e.spec.IsRestricted() {
			// Theorem 8: the minimal extension suffices — if it is
			// inconsistent, every further extension stays inconsistent.
			cons, err := e.SatisfiesDenials(ext)
			if err != nil {
				return false, err
			}
			if cons {
				return false, nil
			}
			continue
		}
		// General case: search for any solution extending E ∪ {α}. Any
		// strictly larger solution must pass through some currently
		// soft-active pair, so this is complete.
		found := false
		s := e.newSearcher(func(*eqrel.Partition) (bool, error) {
			found = true
			return true, nil
		})
		if err := s.run(ext); err != nil {
			return false, err
		}
		if found {
			return false, nil
		}
	}
	return true, nil
}
