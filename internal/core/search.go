package core

import (
	"context"
	"sort"

	"repro/internal/eqrel"
	"repro/internal/limits"
	"repro/internal/obs"
)

// searcher performs depth-first exploration of the candidate-solution
// lattice. States are hard-closed candidate solutions, deduplicated by
// their canonical partition key. Children extend a state by one
// soft-active pair followed by hard closure; by the monotonicity of
// activity (rule bodies are negation-free) every solution is reachable
// this way. This is the sequential searcher; parsearch.go holds the
// work-queue variant used when Options.Parallelism > 1.
type searcher struct {
	c   *Context
	ctx context.Context // optional cancellation; nil means run to completion
	// visited doubles as the dedup set and the state counter.
	visited map[string]bool
	budget  int
	// prune enables the restricted-fragment optimization: when no
	// denial constraint uses inequalities, violations persist under
	// growth, so inconsistent states cannot lead to solutions.
	prune bool
	// visit lets the visitor stop the search.
	visit func(E *eqrel.Partition) (stop bool, err error)
}

func (e *Engine) newSearcher(ctx context.Context, visit func(*eqrel.Partition) (bool, error)) *searcher {
	return &searcher{
		c:       e.Context,
		ctx:     ctx,
		visited: make(map[string]bool),
		budget:  e.sess.opts.MaxStates,
		prune:   e.sess.spec.IsRestricted(),
		visit:   visit,
	}
}

// run explores from the hard closure of start. It returns ErrBudget when
// the state budget is exhausted (results so far are incomplete).
func (s *searcher) run(start *eqrel.Partition) error {
	root := start.Clone()
	if err := s.c.HardClose(root); err != nil {
		return err
	}
	_, err := s.rec(root)
	return err
}

func (s *searcher) rec(E *eqrel.Partition) (stop bool, err error) {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			// Wrapped so callers can match limits.ErrCanceled uniformly
			// across the native search and the ASP pipeline;
			// errors.Is(err, context.Canceled) still holds via Unwrap.
			return true, limits.Wrap(err)
		}
	}
	key := E.Key()
	if s.visited[key] {
		return false, nil
	}
	if len(s.visited) >= s.budget {
		s.c.rec.Inc(obs.CoreSearchBudget, 1)
		return true, ErrBudget
	}
	s.visited[key] = true
	s.c.rec.Inc(obs.CoreSearchStates, 1)

	consistent, err := s.c.SatisfiesDenials(E)
	if err != nil {
		return true, err
	}
	if consistent {
		// Hard rules are satisfied by construction (states are
		// hard-closed), and every state is a candidate solution, so a
		// consistent state is a solution.
		if stop, err := s.visit(E); stop || err != nil {
			return true, err
		}
	} else if s.prune {
		// Restricted specifications: denial violations are preserved
		// under further merges (no inequality atoms), so no descendant
		// can be a solution.
		return false, nil
	}
	act, err := s.c.ActivePairs(E)
	if err != nil {
		return true, err
	}
	for _, a := range act {
		// Hard-active pairs cannot appear here: E is hard-closed.
		child := E.Clone()
		u, v := E.Rep(a.Pair.A), E.Rep(a.Pair.B)
		child.Add(a.Pair)
		s.c.seedInduced(E, child, u, v)
		if err := s.c.HardClose(child); err != nil {
			return true, err
		}
		if stop, err := s.rec(child); stop || err != nil {
			return true, err
		}
	}
	return false, nil
}

// Solutions enumerates solutions of (D, Σ), invoking visit for each (the
// partition is live; clone to retain). Enumeration stops early when
// visit returns true. The error is ErrBudget when the search budget was
// exhausted before the space was fully explored. Solutions always uses
// the sequential searcher — its visit order is part of its contract —
// regardless of Options.Parallelism.
func (e *Engine) Solutions(visit func(E *eqrel.Partition) bool) error {
	return e.SolutionsCtx(context.Background(), visit)
}

// SolutionsCtx is Solutions with cancellation: when ctx is done the
// enumeration stops and ctx.Err() is returned.
func (e *Engine) SolutionsCtx(ctx context.Context, visit func(E *eqrel.Partition) bool) error {
	sp := e.rec.Start(obs.SpanCoreSearch)
	count := 0
	s := e.newSearcher(ctx, func(E *eqrel.Partition) (bool, error) {
		count++
		e.rec.Inc(obs.CoreSearchSolutions, 1)
		if visit(E) {
			return true, nil
		}
		if e.sess.opts.MaxSolutions > 0 && count >= e.sess.opts.MaxSolutions {
			return true, nil
		}
		return false, nil
	})
	err := s.run(e.Identity())
	sp.AttrInt("solutions", int64(count)).AttrInt("states", int64(len(s.visited))).End()
	return err
}

// enumSolutions runs visit over the solutions reachable from the
// identity using the parallel searcher when enabled, the sequential one
// otherwise. visit must accumulate order-independent results only
// (sets, antichains, first-hit flags): under parallelism calls are
// serialized but their order depends on scheduling.
func (e *Engine) enumSolutions(ctx context.Context, visit func(E *eqrel.Partition) bool) error {
	if e.parallelEnabled() {
		return e.parSolutions(ctx, e.Identity(), visit)
	}
	return e.SolutionsCtx(ctx, visit)
}

// Existence decides whether Sol(D, Σ) ≠ ∅ and returns a witness
// solution when one exists (Theorem 2: NP-complete in general). For
// restricted specifications it uses the polynomial algorithm of
// Theorem 8 instead of search. Under parallelism the witness found
// first may differ between runs; the boolean is deterministic.
func (e *Engine) Existence() (*eqrel.Partition, bool, error) {
	return e.ExistenceCtx(context.Background())
}

// ExistenceCtx is Existence with cancellation.
func (e *Engine) ExistenceCtx(ctx context.Context) (*eqrel.Partition, bool, error) {
	if e.sess.spec.IsRestricted() {
		return e.existenceRestricted()
	}
	var found *eqrel.Partition
	err := e.enumSolutions(ctx, func(E *eqrel.Partition) bool {
		found = E.Clone()
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return found, found != nil, nil
}

// existenceRestricted implements Theorem 8: with inequality-free denial
// constraints, a solution exists iff the hard closure of the identity is
// consistent (every solution contains it, and violations persist).
func (e *Engine) existenceRestricted() (*eqrel.Partition, bool, error) {
	h := e.Identity()
	if err := e.HardClose(h); err != nil {
		return nil, false, err
	}
	ok, err := e.SatisfiesDenials(h)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return h, true, nil
}

// MaximalSolutions returns all ⊆-maximal solutions, ordered by
// canonical partition key. For the tractable classes of Theorem 9 (no
// soft rules, or no denial constraints) the unique maximal solution is
// computed directly; otherwise the solution space is enumerated —
// in parallel when Options.Parallelism > 1 — and filtered to its
// maximal antichain. The antichain is a set, so sequential and parallel
// runs return identical output.
func (e *Engine) MaximalSolutions() ([]*eqrel.Partition, error) {
	return e.MaximalSolutionsCtx(context.Background())
}

// MaximalSolutionsCtx is MaximalSolutions with cancellation.
func (e *Engine) MaximalSolutionsCtx(ctx context.Context) ([]*eqrel.Partition, error) {
	sp := e.rec.Start(obs.SpanCoreMaxSol)
	defer sp.End()
	if sol, ok, err, done := e.uniqueMaximal(); done {
		if err != nil || !ok {
			return nil, err
		}
		return []*eqrel.Partition{sol}, nil
	}
	var maximal []*eqrel.Partition
	err := e.enumSolutions(ctx, func(E *eqrel.Partition) bool {
		for i := 0; i < len(maximal); i++ {
			if E.Subset(maximal[i]) {
				return false // dominated
			}
		}
		kept := maximal[:0]
		for _, m := range maximal {
			if !m.ProperSubset(E) {
				kept = append(kept, m)
			}
		}
		maximal = append(kept, E.Clone())
		return false
	})
	if err != nil {
		return nil, err
	}
	sortPartitions(maximal)
	return maximal, nil
}

// sortPartitions orders partitions by canonical key: the deterministic
// output order shared by the sequential and parallel searches.
func sortPartitions(ps []*eqrel.Partition) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Key() < ps[j].Key() })
}

// uniqueMaximal handles the Theorem 9 fragments. done is false when the
// specification is not in a tractable class.
func (e *Engine) uniqueMaximal() (sol *eqrel.Partition, ok bool, err error, done bool) {
	switch {
	case e.sess.spec.IsHardOnly():
		// Γs = ∅: the hard closure of the identity is the unique
		// solution candidate; it is a solution iff consistent.
		h := e.Identity()
		if err := e.HardClose(h); err != nil {
			return nil, false, err, true
		}
		cons, err := e.SatisfiesDenials(h)
		if err != nil {
			return nil, false, err, true
		}
		return h, cons, nil, true
	case e.sess.spec.IsDenialFree():
		// Δ = ∅: the closure under all rules is the unique maximal
		// solution and always exists.
		h := e.Identity()
		if err := e.AllClose(h); err != nil {
			return nil, false, err, true
		}
		return h, true, nil, true
	}
	return nil, false, nil, false
}

// IsMaximalSolution decides MaxRec (Theorem 3: coNP-complete in
// general; Theorem 8: polynomial for restricted specifications).
func (e *Engine) IsMaximalSolution(E *eqrel.Partition) (bool, error) {
	isSol, err := e.IsSolution(E)
	if err != nil || !isSol {
		return false, err
	}
	act, err := e.ActivePairs(E)
	if err != nil {
		return false, err
	}
	for _, a := range act {
		ext := E.Clone()
		u, v := E.Rep(a.Pair.A), E.Rep(a.Pair.B)
		ext.Add(a.Pair)
		e.seedInduced(E, ext, u, v)
		if err := e.HardClose(ext); err != nil {
			return false, err
		}
		if e.sess.spec.IsRestricted() {
			// Theorem 8: the minimal extension suffices — if it is
			// inconsistent, every further extension stays inconsistent.
			cons, err := e.SatisfiesDenials(ext)
			if err != nil {
				return false, err
			}
			if cons {
				return false, nil
			}
			continue
		}
		// General case: search for any solution extending E ∪ {α}. Any
		// strictly larger solution must pass through some currently
		// soft-active pair, so this is complete.
		found := false
		if e.parallelEnabled() {
			err = e.parSolutions(context.Background(), ext, func(*eqrel.Partition) bool {
				found = true
				return true
			})
		} else {
			s := e.newSearcher(nil, func(*eqrel.Partition) (bool, error) {
				found = true
				return true, nil
			})
			err = s.run(ext)
		}
		if err != nil {
			return false, err
		}
		if found {
			return false, nil
		}
	}
	return true, nil
}
