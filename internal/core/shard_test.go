package core

// shard_test.go is the differential guarantee of the sharded engine:
// on every fixture the repo already has (Figure 1, the synthetic
// workload) and on a few hundred random instances, certain merges,
// possible merges and the full maximal-solution set must be
// byte-identical to the monolithic engine's.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/fixtures"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/workload"
)

// assertShardedEquals compares every decision surface of the two
// engines and fails with a diff on the first divergence.
func assertShardedEquals(t *testing.T, label string, mono *Engine, se *ShardedEngine) {
	t.Helper()

	mc, err := mono.CertainMerges()
	if err != nil {
		t.Fatalf("%s: monolithic certain: %v", label, err)
	}
	sc, err := se.CertainMerges()
	if err != nil {
		t.Fatalf("%s: sharded certain: %v", label, err)
	}
	if fmt.Sprintf("%v", mc) != fmt.Sprintf("%v", sc) || (mc == nil) != (sc == nil) {
		t.Fatalf("%s: certain merges diverge:\n  monolithic %v\n  sharded    %v", label, mc, sc)
	}

	mp, err := mono.PossibleMerges()
	if err != nil {
		t.Fatalf("%s: monolithic possible: %v", label, err)
	}
	sp, err := se.PossibleMerges()
	if err != nil {
		t.Fatalf("%s: sharded possible: %v", label, err)
	}
	if fmt.Sprintf("%v", mp) != fmt.Sprintf("%v", sp) || (mp == nil) != (sp == nil) {
		t.Fatalf("%s: possible merges diverge:\n  monolithic %v\n  sharded    %v", label, mp, sp)
	}

	mm, err := mono.MaximalSolutions()
	if err != nil {
		t.Fatalf("%s: monolithic maximal: %v", label, err)
	}
	sm, err := se.MaximalSolutions()
	if err != nil {
		t.Fatalf("%s: sharded maximal: %v", label, err)
	}
	if len(mm) != len(sm) {
		t.Fatalf("%s: %d monolithic vs %d sharded maximal solutions", label, len(mm), len(sm))
	}
	for i := range mm {
		if mm[i].Key() != sm[i].Key() {
			t.Fatalf("%s: maximal solution %d diverges:\n  monolithic %v\n  sharded    %v",
				label, i, mm[i], sm[i])
		}
	}

	_, mok, err := mono.Existence()
	if err != nil {
		t.Fatalf("%s: monolithic existence: %v", label, err)
	}
	sw, sok, err := se.Existence()
	if err != nil {
		t.Fatalf("%s: sharded existence: %v", label, err)
	}
	if mok != sok {
		t.Fatalf("%s: existence %v (monolithic) vs %v (sharded)", label, mok, sok)
	}
	if sok {
		ok, err := mono.IsSolution(sw)
		if err != nil {
			t.Fatalf("%s: checking sharded witness: %v", label, err)
		}
		if !ok {
			t.Fatalf("%s: sharded existence witness is not a solution: %v", label, sw)
		}
	}
}

// TestShardDifferentialFigure1: the paper's running example resolves
// identically sharded and monolithic.
func TestShardDifferentialFigure1(t *testing.T) {
	f := fixtures.New()
	mono, err := New(f.DB, f.Spec, f.Sims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSharded(f.DB, f.Spec, f.Sims, Options{}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertShardedEquals(t, "figure1", mono, se)
	st, err := se.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Monolithic && st.Shards == 0 {
		t.Fatal("figure1 produced no shards despite nontrivial merges")
	}
}

// TestShardDifferentialWorkload: the synthetic bibliographic generator
// at its default (small) size.
func TestShardDifferentialWorkload(t *testing.T) {
	ds, err := workload.Generate(workload.DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := New(ds.DB, ds.Spec, ds.Sims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSharded(ds.DB, ds.Spec, ds.Sims, Options{}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertShardedEquals(t, "workload", mono, se)
}

// TestShardDifferentialRandom: ≥100 random instances from the shared
// property-test generator, under both sequential and parallel shard
// solving. This is the acceptance differential; CI runs it with -race.
func TestShardDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		d, spec, reg := randomInstance(t, rng)
		mono, err := New(d, spec, reg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par := 1 + trial%3 // exercise 1, 2 and 3 shard workers
		se, err := NewSharded(d, spec, reg, Options{Parallelism: par}, ShardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertShardedEquals(t, fmt.Sprintf("trial %d (par %d)", trial, par), mono, se)
	}
}

// TestShardUnsolvable: a choice-independent denial violation yields the
// same no-solution answers sharded and monolithic.
func TestShardUnsolvable(t *testing.T) {
	sch := db.NewSchema()
	sch.MustAdd("R", "a", "b")
	d := db.New(sch, nil)
	d.MustInsert("R", "x", "x") // R(x,x) violated forever: no merge involves x
	reg := sim.NewRegistry()
	spec, err := rules.ParseSpec(`soft s1: R(x,y) ~> EQ(x,y).
denial d1: R(x,x).`, sch, d.Interner(), reg)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := New(d, spec, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSharded(d, spec, reg, Options{}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertShardedEquals(t, "unsolvable", mono, se)
	ms, err := se.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	if ms != nil {
		t.Fatalf("unsolvable instance returned maximal solutions %v", ms)
	}
}

// TestShardRejectsMaxSolutions: truncated enumeration cannot compose
// across shards, so the option is rejected up front.
func TestShardRejectsMaxSolutions(t *testing.T) {
	f := fixtures.New()
	if _, err := NewSharded(f.DB, f.Spec, f.Sims, Options{MaxSolutions: 3}, ShardOptions{}); err == nil {
		t.Fatal("NewSharded accepted Options.MaxSolutions")
	}
}

// TestShardStatsShape: stats reflect the resolved partition.
func TestShardStatsShape(t *testing.T) {
	ds, err := workload.Generate(workload.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSharded(ds.DB, ds.Spec, ds.Sims, Options{}, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := se.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 1 {
		t.Fatalf("stats report %d stitch rounds", st.Rounds)
	}
	if len(st.Sizes) != st.Shards {
		t.Fatalf("stats report %d sizes for %d shards", len(st.Sizes), st.Shards)
	}
	for _, sz := range st.Sizes {
		if sz < 2 {
			t.Fatalf("shard of size %d: components below 2 are not shards", sz)
		}
	}
	// Possible merges must live inside shard members.
	pm, err := se.PossibleMerges()
	if err != nil {
		t.Fatal(err)
	}
	members := make(map[db.Const]bool)
	st2, _ := se.Stats()
	_ = st2
	for _, sh := range se.shards {
		for _, m := range sh.Members {
			members[m] = true
		}
	}
	for _, p := range pm {
		if !st.Monolithic && (!members[p.A] || !members[p.B]) {
			t.Fatalf("possible merge %v outside all shards", p)
		}
	}
}

// TestShardDeterministicAcrossParallelism: the composed results carry
// no trace of the shard-solve schedule.
func TestShardDeterministicAcrossParallelism(t *testing.T) {
	ds, err := workload.Generate(workload.DefaultConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, par := range []int{1, 4} {
		se, err := NewSharded(ds.DB, ds.Spec, ds.Sims, Options{Parallelism: par}, ShardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := se.MaximalSolutions()
		if err != nil {
			t.Fatal(err)
		}
		sig := ""
		for _, m := range ms {
			sig += m.Key() + ";"
		}
		keys = append(keys, sig)
	}
	if keys[0] != keys[1] {
		t.Fatal("maximal solutions differ between Parallelism 1 and 4")
	}
}

var _ = eqrel.MakePair // keep the import if assertions above change
