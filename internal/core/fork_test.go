package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/limits"
)

// TestForkMatchesOriginal: forked engines share the session and return
// exactly the results of the engine they were forked from, even when
// many forks run concurrently.
func TestForkMatchesOriginal(t *testing.T) {
	e, _ := fig1Engine(t)
	wantCM, err := e.CertainMerges()
	if err != nil {
		t.Fatal(err)
	}
	wantPM, err := e.PossibleMerges()
	if err != nil {
		t.Fatal(err)
	}
	wantMS, err := e.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}

	const forks = 4
	var wg sync.WaitGroup
	errs := make(chan error, forks)
	for i := 0; i < forks; i++ {
		w := e.Fork()
		wg.Add(1)
		go func() {
			defer wg.Done()
			cm, err := w.CertainMerges()
			if err != nil {
				errs <- err
				return
			}
			pm, err := w.PossibleMerges()
			if err != nil {
				errs <- err
				return
			}
			ms, err := w.MaximalSolutions()
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(cm, wantCM) || !reflect.DeepEqual(pm, wantPM) {
				errs <- errors.New("fork merge sets differ from original")
				return
			}
			if len(ms) != len(wantMS) {
				errs <- errors.New("fork maximal solution count differs")
				return
			}
			for j := range ms {
				if !ms[j].Equal(wantMS[j]) {
					errs <- errors.New("fork maximal solutions differ")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if !e.DB().Frozen() {
		t.Error("Fork did not freeze the shared database")
	}
}

// TestGreedySolutionCtxCancel: an expired deadline interrupts the
// greedy pass with a typed cancellation error.
func TestGreedySolutionCtxCancel(t *testing.T) {
	e, _ := fig1Engine(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := e.GreedySolutionCtx(ctx)
	if err == nil {
		t.Fatal("expired context produced no error")
	}
	if !errors.Is(err, limits.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want a wrapped cancellation error, got %v", err)
	}
}

// TestCtxVariantsCancel: the new context-accepting decision variants
// stop with a typed cancellation error on an expired deadline.
func TestCtxVariantsCancel(t *testing.T) {
	e, f := fig1Engine(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	a, b := f.Const("a4"), f.Const("a5")
	if _, err := e.IsCertainMergeCtx(ctx, a, b); !limits.IsStop(err) {
		t.Errorf("IsCertainMergeCtx err = %v, want cancellation", err)
	}
	if _, err := e.IsPossibleMergeCtx(ctx, a, b); !limits.IsStop(err) {
		t.Errorf("IsPossibleMergeCtx err = %v, want cancellation", err)
	}
	if _, err := e.ExplainMergeCtx(ctx, a, b); !limits.IsStop(err) {
		t.Errorf("ExplainMergeCtx err = %v, want cancellation", err)
	}
}
