package core

import (
	"fmt"
	"testing"

	"repro/internal/db"
)

// TestInducedCacheEvictionOrder pins the LRU contract: eviction removes
// exactly the least recently used entry, and both get and put refresh
// recency.
func TestInducedCacheEvictionOrder(t *testing.T) {
	mark := func() *db.Database { return db.New(db.NewSchema(), nil) }
	d1, d2, d3, d4 := mark(), mark(), mark(), mark()

	c := newInducedCache(2)
	if ev := c.put("a", d1); ev != 0 {
		t.Fatalf("put a evicted %d entries from an empty cache", ev)
	}
	if ev := c.put("b", d2); ev != 0 {
		t.Fatalf("put b evicted %d entries below capacity", ev)
	}
	// Touch a so b becomes least recently used.
	if got, ok := c.get("a"); !ok || got != d1 {
		t.Fatalf("get a = (%v, %v), want (d1, true)", got, ok)
	}
	if ev := c.put("c", d3); ev != 1 {
		t.Fatalf("put c evicted %d entries, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU should have dropped it")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was evicted despite being most recently used")
	}
	// put on an existing key must refresh recency, not evict: c is now
	// LRU, refresh it via put, then a must be the next victim.
	if ev := c.put("c", d3); ev != 0 {
		t.Fatalf("refreshing put evicted %d entries", ev)
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing after refreshing put")
	}
	// Order now: c (MRU), a (LRU).
	c.get("c")
	if ev := c.put("d", d4); ev != 1 {
		t.Fatalf("put d evicted %d entries, want 1", ev)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived; it was the least recently used entry")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c was evicted out of LRU order")
	}
	if _, ok := c.get("d"); !ok {
		t.Fatal("d missing right after insertion")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestInducedCacheEvictionSequence drives a longer access pattern and
// checks the victim is always the oldest untouched key.
func TestInducedCacheEvictionSequence(t *testing.T) {
	c := newInducedCache(3)
	ind := db.New(db.NewSchema(), nil)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), ind)
	}
	// Recency (old -> new): k0 k1 k2. Touch k0: k1 k2 k0.
	c.get("k0")
	c.put("k3", ind) // evicts k1
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	// Recency: k2 k0 k3.
	c.put("k4", ind) // evicts k2
	if _, ok := c.get("k2"); ok {
		t.Fatal("k2 should have been evicted")
	}
	for _, k := range []string{"k0", "k3", "k4"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing from cache", k)
		}
	}
}
