package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/db"
	"repro/internal/eqrel"
)

// explain.go implements the explanation facilities sketched in
// Section 7 of the paper beyond Definition-4 justifications: explaining
// the status of a pair across the whole space of maximal solutions —
// why a pair is certain, only possible, or impossible.

// MergeStatus classifies a pair against MaxSol(D, Σ).
type MergeStatus int

// Merge statuses.
const (
	// Certain: the pair is in every maximal solution (and one exists).
	Certain MergeStatus = iota
	// PossibleOnly: in some but not all maximal solutions.
	PossibleOnly
	// Impossible: in no solution at all.
	Impossible
)

func (s MergeStatus) String() string {
	switch s {
	case Certain:
		return "certain"
	case PossibleOnly:
		return "possible"
	default:
		return "impossible"
	}
}

// MergeExplanation explains the status of a pair.
type MergeExplanation struct {
	Pair   eqrel.Pair
	Status MergeStatus

	// Certain: Justification derives the pair in some maximal solution.
	Justification *Justification

	// PossibleOnly: Witness is a maximal solution containing the pair,
	// CounterExample one that excludes it.
	Witness, CounterExample *eqrel.Partition

	// Impossible, case 1: no sequence of rule applications can ever
	// derive the pair, even ignoring all denial constraints.
	NeverDerivable bool
	// Impossible, case 2 (NeverDerivable false): the pair is derivable,
	// but every way of deriving it violates constraints. BlockedBy
	// lists the denial constraints violated on the full closure
	// containing the pair — the canonical obstruction witness.
	BlockedBy []string
}

// Format renders the explanation with constant names.
func (x *MergeExplanation) Format(in *db.Interner) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s,%s) is %s", in.Name(x.Pair.A), in.Name(x.Pair.B), x.Status)
	switch x.Status {
	case Certain:
		b.WriteString(": it holds in every maximal solution; one derivation:\n")
		b.WriteString(x.Justification.Format(in))
	case PossibleOnly:
		fmt.Fprintf(&b, ":\n  holds in   %s\n  fails in   %s\n",
			x.Witness.Format(in), x.CounterExample.Format(in))
	default:
		if x.NeverDerivable {
			b.WriteString(": no sequence of rule applications can derive it.\n")
		} else {
			fmt.Fprintf(&b, ": it is derivable, but only in states violating %s.\n",
				strings.Join(x.BlockedBy, ", "))
		}
	}
	return b.String()
}

// ExplainMerge computes the status of the pair (a, b) together with
// supporting evidence. It enumerates the maximal solutions, so it has
// the complexity of CertMerge (Π^p_2 in general).
func (e *Engine) ExplainMerge(a, b db.Const) (*MergeExplanation, error) {
	return e.ExplainMergeCtx(context.Background(), a, b)
}

// ExplainMergeCtx is ExplainMerge with cancellation.
func (e *Engine) ExplainMergeCtx(ctx context.Context, a, b db.Const) (*MergeExplanation, error) {
	if a == b {
		return nil, fmt.Errorf("core: reflexive pairs are trivially certain")
	}
	x := &MergeExplanation{Pair: eqrel.MakePair(a, b)}
	maximal, err := e.MaximalSolutionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	var with, without *eqrel.Partition
	for _, m := range maximal {
		if m.Same(a, b) {
			if with == nil {
				with = m
			}
		} else if without == nil {
			without = m
		}
	}
	switch {
	case with != nil && without == nil:
		x.Status = Certain
		j, err := e.Justify(with, a, b)
		if err != nil {
			return nil, err
		}
		x.Justification = j
		return x, nil
	case with != nil:
		x.Status = PossibleOnly
		x.Witness = with
		x.CounterExample = without
		return x, nil
	}
	x.Status = Impossible
	// Distinguish "never derivable" from "derivable but blocked": close
	// under all rules ignoring denial constraints.
	closure := e.Identity()
	if err := e.AllClose(closure); err != nil {
		return nil, err
	}
	if !closure.Same(a, b) {
		x.NeverDerivable = true
		return x, nil
	}
	viol, err := e.ViolatedDenials(closure)
	if err != nil {
		return nil, err
	}
	x.BlockedBy = viol
	return x, nil
}
