package core

import (
	"context"
	"sort"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eqrel"
)

// IsPossibleMerge decides PossMerge (Theorem 5: NP-complete): whether
// (a, b) belongs to some maximal solution. Since every solution extends
// to a maximal one, it suffices to find any solution containing the
// pair, so the search stops (and, under parallelism, cancels the other
// workers) at the first hit.
func (e *Engine) IsPossibleMerge(a, b db.Const) (bool, error) {
	return e.IsPossibleMergeCtx(context.Background(), a, b)
}

// IsPossibleMergeCtx is IsPossibleMerge with cancellation.
func (e *Engine) IsPossibleMergeCtx(ctx context.Context, a, b db.Const) (bool, error) {
	found := false
	err := e.enumSolutions(ctx, func(E *eqrel.Partition) bool {
		if E.Same(a, b) {
			found = true
			return true
		}
		return false
	})
	return found, err
}

// IsCertainMerge decides CertMerge (Theorem 4: Π^p_2-complete): whether
// (a, b) belongs to every maximal solution, the set of maximal solutions
// being nonempty. Certain merges are possible merges by definition, so
// the answer is false when no solution exists.
func (e *Engine) IsCertainMerge(a, b db.Const) (bool, error) {
	return e.IsCertainMergeCtx(context.Background(), a, b)
}

// IsCertainMergeCtx is IsCertainMerge with cancellation.
func (e *Engine) IsCertainMergeCtx(ctx context.Context, a, b db.Const) (bool, error) {
	maximal, err := e.MaximalSolutionsCtx(ctx)
	if err != nil {
		return false, err
	}
	if len(maximal) == 0 {
		return false, nil
	}
	for _, m := range maximal {
		if !m.Same(a, b) {
			return false, nil
		}
	}
	return true, nil
}

// PossibleMerges returns possMerge(D, Σ): the union of the merge sets of
// all maximal solutions, sorted. Maximal solutions have the same pair
// union as all solutions, so plain solution enumeration suffices. The
// output is a sorted set, so sequential and parallel runs return
// identical results.
func (e *Engine) PossibleMerges() ([]eqrel.Pair, error) {
	return e.PossibleMergesCtx(context.Background())
}

// PossibleMergesCtx is PossibleMerges with cancellation.
func (e *Engine) PossibleMergesCtx(ctx context.Context) ([]eqrel.Pair, error) {
	seen := make(map[eqrel.Pair]bool)
	err := e.enumSolutions(ctx, func(E *eqrel.Partition) bool {
		for _, p := range E.Pairs() {
			seen[p] = true
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	return sortedPairs(seen), nil
}

// CertainMerges returns certMerge(D, Σ): the intersection of the merge
// sets of all maximal solutions (empty when no solution exists), sorted.
func (e *Engine) CertainMerges() ([]eqrel.Pair, error) {
	return e.CertainMergesCtx(context.Background())
}

// CertainMergesCtx is CertainMerges with cancellation.
func (e *Engine) CertainMergesCtx(ctx context.Context) ([]eqrel.Pair, error) {
	maximal, err := e.MaximalSolutionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	if len(maximal) == 0 {
		return nil, nil
	}
	inter := make(map[eqrel.Pair]bool)
	for _, p := range maximal[0].Pairs() {
		inter[p] = true
	}
	for _, m := range maximal[1:] {
		for p := range inter {
			if !m.Same(p.A, p.B) {
				delete(inter, p)
			}
		}
	}
	return sortedPairs(inter), nil
}

func sortedPairs(set map[eqrel.Pair]bool) []eqrel.Pair {
	out := make([]eqrel.Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// AnswersIn returns q(D, E): the tuples of original constants ā such
// that (rep_E(a1), ..., rep_E(an)) ∈ q(D_E), reported over class
// representatives (one tuple per answer class), sorted. The plan for q
// is prepared once and cached; constants are remapped at run time.
func (e *Engine) AnswersIn(q *cq.CQ, E *eqrel.Partition) ([][]db.Const, error) {
	pq, err := e.planFor(q, q.Atoms, q.Head)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out [][]db.Const
	pq.plan.RunWith(e.Induced(E), e.sims, cq.RunSpec{Rec: e.rec, Rep: e.repFor(E)},
		func(ans []db.Const, _ []cq.Match) bool {
			k := db.TupleKey(ans)
			if !seen[k] {
				seen[k] = true
				out = append(out, append([]db.Const(nil), ans...))
			}
			return true
		})
	sortTuples(out)
	return out, nil
}

// HoldsIn reports whether ā ∈ q(D, E), i.e. the representative tuple of
// ā is an answer to q on D_E. The head variables are pre-bound to the
// representatives of ā, so the cached plan is shared with AnswersIn.
func (e *Engine) HoldsIn(q *cq.CQ, tuple []db.Const, E *eqrel.Partition) (bool, error) {
	if len(tuple) != len(q.Head) {
		return false, nil
	}
	pq, err := e.planFor(q, q.Atoms, q.Head)
	if err != nil {
		return false, err
	}
	bind := make(map[string]db.Const, len(q.Head))
	for i, h := range q.Head {
		c := tuple[i]
		if int(c) < e.sess.dom {
			c = E.Rep(c)
		}
		bind[h] = c
	}
	return pq.plan.Holds(e.Induced(E), e.sims, cq.RunSpec{Rec: e.rec, Rep: e.repFor(E), Bind: bind}), nil
}

// IsPossibleAnswer decides PossAnswer (Theorem 7: NP-complete): whether
// ā ∈ q(D, E) for some maximal solution E. Query answers are preserved
// under extension of E (queries are homomorphism-preserved), so any
// solution witnesses possibility.
func (e *Engine) IsPossibleAnswer(q *cq.CQ, tuple []db.Const) (bool, error) {
	return e.IsPossibleAnswerCtx(context.Background(), q, tuple)
}

// IsPossibleAnswerCtx is IsPossibleAnswer with cancellation.
func (e *Engine) IsPossibleAnswerCtx(ctx context.Context, q *cq.CQ, tuple []db.Const) (bool, error) {
	found := false
	var inner error
	err := e.SolutionsCtx(ctx, func(E *eqrel.Partition) bool {
		ok, herr := e.HoldsIn(q, tuple, E)
		if herr != nil {
			inner = herr
			return true
		}
		if ok {
			found = true
			return true
		}
		return false
	})
	if inner != nil {
		return false, inner
	}
	return found, err
}

// IsCertainAnswer decides CertAnswer (Theorem 6: Π^p_2-complete):
// whether ā ∈ q(D, E) for every maximal solution E, there being at
// least one. Empty when no solution exists, per Definition 6.
func (e *Engine) IsCertainAnswer(q *cq.CQ, tuple []db.Const) (bool, error) {
	return e.IsCertainAnswerCtx(context.Background(), q, tuple)
}

// IsCertainAnswerCtx is IsCertainAnswer with cancellation.
func (e *Engine) IsCertainAnswerCtx(ctx context.Context, q *cq.CQ, tuple []db.Const) (bool, error) {
	maximal, err := e.MaximalSolutionsCtx(ctx)
	if err != nil {
		return false, err
	}
	if len(maximal) == 0 {
		return false, nil
	}
	for _, m := range maximal {
		ok, err := e.HoldsIn(q, tuple, m)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// PossibleAnswers returns possAns(q, D, Σ): the union of q(D, E) over
// all maximal solutions E, with each representative answer expanded to
// every original-constant tuple in its equivalence classes.
func (e *Engine) PossibleAnswers(q *cq.CQ) ([][]db.Const, error) {
	return e.PossibleAnswersCtx(context.Background(), q)
}

// PossibleAnswersCtx is PossibleAnswers with cancellation.
func (e *Engine) PossibleAnswersCtx(ctx context.Context, q *cq.CQ) ([][]db.Const, error) {
	maximal, err := e.MaximalSolutionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out [][]db.Const
	for _, m := range maximal {
		tuples, err := e.expandedAnswers(q, m)
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			k := db.TupleKey(t)
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	sortTuples(out)
	return out, nil
}

// CertainAnswers returns certAns(q, D, Σ): the tuples that are answers
// in every maximal solution (empty when none exists).
func (e *Engine) CertainAnswers(q *cq.CQ) ([][]db.Const, error) {
	return e.CertainAnswersCtx(context.Background(), q)
}

// CertainAnswersCtx is CertainAnswers with cancellation.
func (e *Engine) CertainAnswersCtx(ctx context.Context, q *cq.CQ) ([][]db.Const, error) {
	maximal, err := e.MaximalSolutionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	if len(maximal) == 0 {
		return nil, nil
	}
	counts := make(map[string]int)
	tuples := make(map[string][]db.Const)
	for _, m := range maximal {
		ts, err := e.expandedAnswers(q, m)
		if err != nil {
			return nil, err
		}
		for _, t := range ts {
			k := db.TupleKey(t)
			if counts[k] == 0 {
				tuples[k] = t
			}
			counts[k]++
		}
	}
	var out [][]db.Const
	for k, n := range counts {
		if n == len(maximal) {
			out = append(out, tuples[k])
		}
	}
	sortTuples(out)
	return out, nil
}

// expandedAnswers computes q(D, E) as original-constant tuples: each
// representative answer is expanded through the classes of its
// components.
func (e *Engine) expandedAnswers(q *cq.CQ, E *eqrel.Partition) ([][]db.Const, error) {
	reps, err := e.AnswersIn(q, E)
	if err != nil {
		return nil, err
	}
	members := e.classMembers(E)
	var out [][]db.Const
	for _, rep := range reps {
		out = appendExpansions(out, rep, members)
	}
	return out, nil
}

// classMembers maps each representative to the sorted members of its
// class (singletons included lazily via fallback in appendExpansions).
func (e *Engine) classMembers(E *eqrel.Partition) map[db.Const][]db.Const {
	m := make(map[db.Const][]db.Const)
	for _, cls := range E.NontrivialClasses() {
		m[cls[0]] = cls
	}
	return m
}

func appendExpansions(out [][]db.Const, rep []db.Const, members map[db.Const][]db.Const) [][]db.Const {
	choices := make([][]db.Const, len(rep))
	total := 1
	for i, c := range rep {
		if ms := members[c]; ms != nil {
			choices[i] = ms
		} else {
			choices[i] = []db.Const{c}
		}
		total *= len(choices[i])
	}
	idx := make([]int, len(rep))
	for n := 0; n < total; n++ {
		t := make([]db.Const, len(rep))
		for i := range rep {
			t[i] = choices[i][idx[i]]
		}
		out = append(out, t)
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(choices[i]) {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

func sortTuples(ts [][]db.Const) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}
