package core

import (
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/rules"
	"repro/internal/sim"
)

// randomEngine builds a random small instance exercising joins, hard
// rules, similarity and both denial shapes — the same family the
// Theorem 10 tests use, reproduced here for semantic invariants.
func randomEngine(t *testing.T, rng *rand.Rand) *Engine {
	t.Helper()
	d, spec, reg := randomInstance(t, rng)
	e, err := New(d, spec, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// randomInstance generates the database, specification and similarity
// registry of one random instance, so tests can build several engines
// (e.g. sequential and parallel) over identical inputs.
func randomInstance(t *testing.T, rng *rand.Rand) (*db.Database, *rules.Spec, *sim.Registry) {
	t.Helper()
	sch := db.NewSchema()
	sch.MustAdd("R", "a", "b")
	sch.MustAdd("S", "k", "v")
	sch.MustAdd("N", "id", "name")
	d := db.New(sch, nil)
	consts := []string{"c0", "c1", "c2", "c3", "c4"}
	names := []string{"na", "nb", "nc"}
	for i := 0; i < 2+rng.Intn(4); i++ {
		d.MustInsert("R", consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
	}
	for i := 0; i < 2+rng.Intn(4); i++ {
		d.MustInsert("S", consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
	}
	for i := 0; i < 3; i++ {
		d.MustInsert("N", consts[rng.Intn(len(consts))], names[rng.Intn(len(names))])
	}
	tbl := sim.NewTable("approx").Add("na", "nb")
	if rng.Intn(2) == 0 {
		tbl.Add("nb", "nc")
	}
	reg := sim.NewRegistry(tbl)
	src := `soft s1: R(x,y) ~> EQ(x,y).
soft s2: N(x,n), N(y,n2), approx(n,n2) ~> EQ(x,y).`
	if rng.Intn(2) == 0 {
		src += "\nhard h1: S(z,x), S(z,y) => EQ(x,y)."
	}
	switch rng.Intn(4) {
	case 0:
		src += "\ndenial d1: S(k,v), S(k,v2), v != v2."
	case 1:
		src += "\ndenial d1: R(x,x)."
	case 2:
		src += "\ndenial d1: S(k,v), R(v,k)."
	}
	spec, err := rules.ParseSpec(src, sch, d.Interner(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return d, spec, reg
}

// TestPropertyEverySolutionRecognized: everything the enumerator emits
// passes the independent Rec check, and every maximal solution passes
// MaxRec.
func TestPropertyEverySolutionRecognized(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		e := randomEngine(t, rng)
		var sols []*eqrel.Partition
		if err := e.Solutions(func(E *eqrel.Partition) bool {
			sols = append(sols, E.Clone())
			return false
		}); err != nil {
			t.Fatal(err)
		}
		for _, s := range sols {
			ok, err := e.IsSolution(s)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: enumerated solution fails Rec: %v", trial, s)
			}
		}
		maximal, err := e.MaximalSolutions()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range maximal {
			ok, err := e.IsMaximalSolution(m)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: maximal solution fails MaxRec: %v", trial, m)
			}
		}
		// And non-maximal solutions fail MaxRec.
		for _, s := range sols {
			isMax := false
			for _, m := range maximal {
				if s.Equal(m) {
					isMax = true
				}
			}
			got, err := e.IsMaximalSolution(s)
			if err != nil {
				t.Fatal(err)
			}
			if got != isMax {
				t.Fatalf("trial %d: MaxRec(%v) = %v, enumeration says %v", trial, s, got, isMax)
			}
		}
	}
}

// TestPropertyEverySolutionInSomeMaximal: solutions embed into maximal
// ones (the lattice has no dead ends), so possMerge via any solution is
// sound.
func TestPropertyEverySolutionInSomeMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 25; trial++ {
		e := randomEngine(t, rng)
		maximal, err := e.MaximalSolutions()
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Solutions(func(E *eqrel.Partition) bool {
			for _, m := range maximal {
				if E.Subset(m) {
					return false
				}
			}
			t.Fatalf("trial %d: solution %v not below any maximal solution", trial, E)
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPropertyCertainSubsetPossible: certMerge ⊆ possMerge, and both
// agree with the per-pair deciders.
func TestPropertyCertainSubsetPossible(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 20; trial++ {
		e := randomEngine(t, rng)
		cm, err := e.CertainMerges()
		if err != nil {
			t.Fatal(err)
		}
		pm, err := e.PossibleMerges()
		if err != nil {
			t.Fatal(err)
		}
		poss := make(map[eqrel.Pair]bool, len(pm))
		for _, p := range pm {
			poss[p] = true
		}
		for _, p := range cm {
			if !poss[p] {
				t.Fatalf("trial %d: certain pair %v not possible", trial, p)
			}
			ok, err := e.IsCertainMerge(p.A, p.B)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: CertainMerges/IsCertainMerge disagree on %v", trial, p)
			}
		}
		for _, p := range pm {
			ok, err := e.IsPossibleMerge(p.A, p.B)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: PossibleMerges/IsPossibleMerge disagree on %v", trial, p)
			}
		}
	}
}

// TestPropertyActivityMonotone: the paper's key monotonicity — a pair
// active in (D, E) stays active in (D, E′) for E ⊆ E′ (rule bodies are
// negation-free). Verified along random growth chains.
func TestPropertyActivityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 20; trial++ {
		e := randomEngine(t, rng)
		E := e.Identity()
		prev, err := e.ActivePairs(E)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 4 && len(prev) > 0; step++ {
			// Add one random active pair.
			a := prev[rng.Intn(len(prev))]
			E.Add(a.Pair)
			cur, err := e.ActivePairs(E)
			if err != nil {
				t.Fatal(err)
			}
			curSet := make(map[eqrel.Pair]bool, len(cur))
			for _, c := range cur {
				curSet[c.Pair] = true
			}
			for _, p := range prev {
				// Still active unless now inside E. Note activity is
				// stated over representative pairs; re-normalize.
				u, v := E.Rep(p.Pair.A), E.Rep(p.Pair.B)
				if u == v {
					continue
				}
				if !curSet[eqrel.MakePair(u, v)] {
					t.Fatalf("trial %d step %d: pair %v lost activity after growth", trial, step, p.Pair)
				}
			}
			prev = cur
		}
	}
}

// TestPropertyJustifyAllMergesOfAllMaximal: every merge of every
// maximal solution is justifiable, across random instances.
func TestPropertyJustifyAllMergesOfAllMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 15; trial++ {
		e := randomEngine(t, rng)
		maximal, err := e.MaximalSolutions()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range maximal {
			for _, p := range m.Pairs() {
				j, err := e.Justify(m, p.A, p.B)
				if err != nil {
					t.Fatalf("trial %d: justify %v: %v", trial, p, err)
				}
				if len(j.Steps) == 0 || j.Steps[len(j.Steps)-1].Pair != p {
					t.Fatalf("trial %d: malformed justification for %v", trial, p)
				}
			}
		}
	}
}

// TestPropertyGreedyIsSolution: whenever the greedy pass reports
// consistency, its result passes the independent Rec check.
func TestPropertyGreedyIsSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 25; trial++ {
		e := randomEngine(t, rng)
		sol, ok, err := e.GreedySolution()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		isSol, err := e.IsSolution(sol)
		if err != nil {
			t.Fatal(err)
		}
		if !isSol {
			t.Fatalf("trial %d: greedy result fails Rec", trial)
		}
	}
}

// TestPropertyProp1SolutionSets: Proposition 1 on random instances.
func TestPropertyProp1SolutionSets(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 15; trial++ {
		e := randomEngine(t, rng)
		tr := e.Spec().Prop1Transform()
		e2, err := New(e.DB(), tr, e.Sims(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		collect := func(en *Engine) map[string]bool {
			out := map[string]bool{}
			if err := en.Solutions(func(E *eqrel.Partition) bool {
				out[E.Key()] = true
				return false
			}); err != nil {
				t.Fatal(err)
			}
			return out
		}
		s1, s2 := collect(e), collect(e2)
		if len(s1) != len(s2) {
			t.Fatalf("trial %d: %d vs %d solutions after Prop1 transform", trial, len(s1), len(s2))
		}
		for k := range s1 {
			if !s2[k] {
				t.Fatalf("trial %d: transform changed the solution set", trial)
			}
		}
	}
}

// naiveClose is the reference fixpoint the semi-naive closure is
// differentially tested against: recompute every active pair from
// scratch each round and union the accepted ones until nothing changes.
func naiveClose(t *testing.T, e *Engine, E *eqrel.Partition, hardOnly bool) {
	t.Helper()
	for {
		aps, err := e.ActivePairs(E)
		if err != nil {
			t.Fatal(err)
		}
		changed := false
		for _, a := range aps {
			if hardOnly && !a.Hard {
				continue
			}
			if E.Add(a.Pair) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// randomPartition unions a few random constant pairs.
func randomPartition(e *Engine, rng *rand.Rand) *eqrel.Partition {
	E := e.Identity()
	n := e.DB().Interner().Size()
	for i := 0; i < rng.Intn(3); i++ {
		a, b := db.Const(rng.Intn(n)), db.Const(rng.Intn(n))
		if a != b {
			E.Add(eqrel.MakePair(a, b))
		}
	}
	return E
}

// TestPropertyFixpointMatchesNaive: the semi-naive HardClose/AllClose
// reach exactly the partition the naive recompute-everything fixpoint
// reaches, from random engines and random start partitions.
func TestPropertyFixpointMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 30; trial++ {
		e := randomEngine(t, rng)
		start := randomPartition(e, rng)

		hard := start.Clone()
		if err := e.HardClose(hard); err != nil {
			t.Fatal(err)
		}
		hardRef := start.Clone()
		naiveClose(t, e, hardRef, true)
		if !hard.Equal(hardRef) {
			t.Fatalf("trial %d: HardClose %v, naive fixpoint %v (start %v)",
				trial, hard, hardRef, start)
		}

		all := start.Clone()
		if err := e.AllClose(all); err != nil {
			t.Fatal(err)
		}
		allRef := start.Clone()
		naiveClose(t, e, allRef, false)
		if !all.Equal(allRef) {
			t.Fatalf("trial %d: AllClose %v, naive fixpoint %v (start %v)",
				trial, all, allRef, start)
		}
	}
}

// TestPropertyInducedMatchesFullMap: every induced database the engine
// hands out — including entries seeded incrementally from a parent
// state during search — equals the full D_E recomputed from scratch.
func TestPropertyInducedMatchesFullMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1010))
	for trial := 0; trial < 20; trial++ {
		e := randomEngine(t, rng)
		// Populate the cache through the search path (seedInduced/MapFrom).
		var sols []*eqrel.Partition
		if err := e.Solutions(func(E *eqrel.Partition) bool {
			sols = append(sols, E.Clone())
			return false
		}); err != nil {
			t.Fatal(err)
		}
		sols = append(sols, randomPartition(e, rng))
		for _, E := range sols {
			got := e.Induced(E)
			want := e.DB().Map(E.Rep)
			if !got.Equal(want) {
				t.Fatalf("trial %d: induced DB for %v diverges from full map", trial, E)
			}
		}
	}
}

// TestPropertyAnswerPreservation: Boolean CQ answers true in a solution
// stay true in every extension within the lattice (homomorphism
// preservation), justifying the PossAnswer shortcut.
func TestPropertyAnswerPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	q, qerr := rules.ParseQuery(`R(x,y), S(y,z)`, func() *db.Schema {
		s := db.NewSchema()
		s.MustAdd("R", "a", "b")
		s.MustAdd("S", "k", "v")
		s.MustAdd("N", "id", "name")
		return s
	}(), nil, nil)
	if qerr != nil {
		t.Fatal(qerr)
	}
	for trial := 0; trial < 15; trial++ {
		e := randomEngine(t, rng)
		var sols []*eqrel.Partition
		if err := e.Solutions(func(E *eqrel.Partition) bool {
			sols = append(sols, E.Clone())
			return false
		}); err != nil {
			t.Fatal(err)
		}
		for _, s := range sols {
			holds, err := e.HoldsIn(q, nil, s)
			if err != nil {
				t.Fatal(err)
			}
			if !holds {
				continue
			}
			for _, s2 := range sols {
				if !s.Subset(s2) {
					continue
				}
				holds2, err := e.HoldsIn(q, nil, s2)
				if err != nil {
					t.Fatal(err)
				}
				if !holds2 {
					t.Fatalf("trial %d: Boolean answer lost under solution growth", trial)
				}
			}
		}
	}
}
