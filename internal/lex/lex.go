// Package lex provides the shared tokenizer for the fact-file and
// specification languages: identifiers (allowing '@', '.', '-' so emails
// and abbreviations are plain constants), quoted strings, punctuation,
// the rule arrows "=>" (hard) and "~>" (soft), the infix similarity "~",
// and the inequality "!=". Comments run from '#' or '%' to end of line.
package lex

import (
	"fmt"
	"strings"
)

// Kind identifies a token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	String
	LParen
	RParen
	Comma
	Dot
	Colon
	Neq     // !=
	Tilde   // ~
	Arrow   // => (hard rule)
	Squig   // ~> (soft rule)
	Keyword // reserved word supplied to New
)

// Token is a lexeme with its source line.
type Token struct {
	Kind Kind
	Text string
	Line int
}

// Lexer tokenizes a source string. Create one with New.
type Lexer struct {
	src      string
	pos      int
	line     int
	keywords map[string]bool
	peeked   *Token
}

// New returns a lexer over src that recognizes the given identifiers as
// Keyword tokens.
func New(src string, keywords ...string) *Lexer {
	kw := make(map[string]bool, len(keywords))
	for _, k := range keywords {
		kw[k] = true
	}
	return &Lexer{src: src, line: 1, keywords: kw}
}

// Errf formats an error with a source line prefix.
func (lx *Lexer) Errf(line int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

// IsIdentRune reports whether b may occur in an identifier.
func IsIdentRune(b byte) bool {
	return b == '_' || b == '-' || b == '.' || b == '@' ||
		'a' <= b && b <= 'z' || 'A' <= b && b <= 'Z' || '0' <= b && b <= '9'
}

func (lx *Lexer) scan() (Token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '#' || c == '%':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return Token{Kind: EOF, Line: lx.line}, nil
scan:
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case c == '(':
		lx.pos++
		return Token{LParen, "(", lx.line}, nil
	case c == ')':
		lx.pos++
		return Token{RParen, ")", lx.line}, nil
	case c == ',':
		lx.pos++
		return Token{Comma, ",", lx.line}, nil
	case c == ':':
		lx.pos++
		return Token{Colon, ":", lx.line}, nil
	case c == '.':
		// A leading '.' is always the statement terminator; '.' inside
		// identifiers (emails, abbreviations) is handled by the Ident case.
		lx.pos++
		return Token{Dot, ".", lx.line}, nil
	case c == '!':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return Token{Neq, "!=", lx.line}, nil
		}
		return Token{}, lx.Errf(lx.line, "unexpected %q", "!")
	case c == '=':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '>' {
			lx.pos += 2
			return Token{Arrow, "=>", lx.line}, nil
		}
		return Token{}, lx.Errf(lx.line, "unexpected %q (did you mean \"=>\" or \"!=\"?)", "=")
	case c == '~':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '>' {
			lx.pos += 2
			return Token{Squig, "~>", lx.line}, nil
		}
		lx.pos++
		return Token{Tilde, "~", lx.line}, nil
	case c == '"':
		lx.pos++
		var b strings.Builder
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if ch == '"' {
				lx.pos++
				return Token{String, b.String(), lx.line}, nil
			}
			if ch == '\\' && lx.pos+1 < len(lx.src) {
				lx.pos++
				ch = lx.src[lx.pos]
			}
			if ch == '\n' {
				lx.line++
			}
			b.WriteByte(ch)
			lx.pos++
		}
		return Token{}, lx.Errf(lx.line, "unterminated string literal")
	case IsIdentRune(c):
		for lx.pos < len(lx.src) && IsIdentRune(lx.src[lx.pos]) {
			// A '.' belongs to the identifier only when followed by
			// another identifier rune; otherwise it terminates the
			// statement (e.g. the final "y2." of a denial).
			if lx.src[lx.pos] == '.' &&
				(lx.pos+1 >= len(lx.src) || !IsIdentRune(lx.src[lx.pos+1])) {
				break
			}
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if lx.keywords[text] {
			return Token{Keyword, text, lx.line}, nil
		}
		return Token{Ident, text, lx.line}, nil
	default:
		return Token{}, lx.Errf(lx.line, "unexpected character %q", string(c))
	}
}

// Peek returns the next token without consuming it.
func (lx *Lexer) Peek() (Token, error) {
	if lx.peeked == nil {
		t, err := lx.scan()
		if err != nil {
			return Token{}, err
		}
		lx.peeked = &t
	}
	return *lx.peeked, nil
}

// Next consumes and returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if lx.peeked != nil {
		t := *lx.peeked
		lx.peeked = nil
		return t, nil
	}
	return lx.scan()
}

// Expect consumes the next token and fails unless it has the given kind.
func (lx *Lexer) Expect(kind Kind, what string) (Token, error) {
	t, err := lx.Next()
	if err != nil {
		return Token{}, err
	}
	if t.Kind != kind {
		return Token{}, lx.Errf(t.Line, "expected %s, got %q", what, t.Text)
	}
	return t, nil
}
