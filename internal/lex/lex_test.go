package lex

import "testing"

func kinds(t *testing.T, src string, keywords ...string) []Kind {
	t.Helper()
	lx := New(src, keywords...)
	var out []Kind
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == EOF {
			return out
		}
		out = append(out, tok.Kind)
	}
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, `R(x, y) => EQ`)
	want := []Kind{Ident, LParen, Ident, Comma, Ident, RParen, Arrow, Ident}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, `x != y ~ z ~> w : .`)
	want := []Kind{Ident, Neq, Ident, Tilde, Ident, Squig, Ident, Colon, Dot}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDotDisambiguation(t *testing.T) {
	// Emails keep internal dots; a trailing dot terminates.
	lx := New(`wchen@gm.com y2.`)
	tok, _ := lx.Next()
	if tok.Kind != Ident || tok.Text != "wchen@gm.com" {
		t.Errorf("email token = %v %q", tok.Kind, tok.Text)
	}
	tok, _ = lx.Next()
	if tok.Kind != Ident || tok.Text != "y2" {
		t.Errorf("ident token = %v %q", tok.Kind, tok.Text)
	}
	tok, _ = lx.Next()
	if tok.Kind != Dot {
		t.Errorf("terminator = %v, want Dot", tok.Kind)
	}
}

func TestStringsAndEscapes(t *testing.T) {
	lx := New(`"hello \"quoted\" world"`)
	tok, err := lx.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.Kind != String || tok.Text != `hello "quoted" world` {
		t.Errorf("string = %q", tok.Text)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "# comment\nfoo % another\nbar")
	if len(got) != 2 || got[0] != Ident || got[1] != Ident {
		t.Errorf("comments not skipped: %v", got)
	}
}

func TestKeywords(t *testing.T) {
	lx := New(`hard hardly`, "hard")
	tok, _ := lx.Next()
	if tok.Kind != Keyword {
		t.Errorf("keyword not recognized: %v", tok)
	}
	tok, _ = lx.Next()
	if tok.Kind != Ident || tok.Text != "hardly" {
		t.Errorf("prefix of keyword mislexed: %v %q", tok.Kind, tok.Text)
	}
}

func TestLineTracking(t *testing.T) {
	lx := New("a\nb\n\nc")
	for _, want := range []int{1, 2, 4} {
		tok, _ := lx.Next()
		if tok.Line != want {
			t.Errorf("token %q at line %d, want %d", tok.Text, tok.Line, want)
		}
	}
}

func TestPeek(t *testing.T) {
	lx := New("a b")
	p1, _ := lx.Peek()
	p2, _ := lx.Peek()
	if p1 != p2 {
		t.Error("repeated Peek returned different tokens")
	}
	n, _ := lx.Next()
	if n != p1 {
		t.Error("Next disagreed with Peek")
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{`"open`, `!x`, `= y`, "\x01"} {
		lx := New(src)
		if _, err := lx.Next(); err == nil {
			t.Errorf("lex %q succeeded, want error", src)
		}
	}
}

func TestExpect(t *testing.T) {
	lx := New("( x")
	if _, err := lx.Expect(LParen, "'('"); err != nil {
		t.Errorf("Expect LParen failed: %v", err)
	}
	if _, err := lx.Expect(Comma, "','"); err == nil {
		t.Error("Expect of wrong kind succeeded")
	}
}
