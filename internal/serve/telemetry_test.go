package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for telemetry sinks:
// handler goroutines write while the test goroutine reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuffer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Len()
}

// fixServer pins the server's clock and ID generator so telemetry
// output is deterministic. Call before issuing requests.
func fixServer(s *Server) {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	s.now = func() time.Time { return t0 }
	n := 0
	s.nextID = func() string {
		n++
		return fmt.Sprintf("req-%06d", n)
	}
}

func TestMetricsPrometheusConformance(t *testing.T) {
	in := loadFig1(t)
	_, ts := newTestServer(t, in, nil)
	// Exercise enough of the server that every metric kind has data:
	// a miss, a hit, two endpoints, a health check.
	post(t, ts, "/v1/merges/certain", nil, nil)
	post(t, ts, "/v1/merges/certain", nil, nil)
	post(t, ts, "/v1/merges/possible", nil, nil)
	post(t, ts, "/healthz", nil, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	res := obs.LintProm(resp.Body)
	if err := res.Err(); err != nil {
		t.Fatalf("conformance: %v", err)
	}
	missing := res.CheckFamilies(
		"lace_serve_requests_total",
		"lace_serve_cache_hits_total",
		"lace_serve_cache_hit_ratio",
		"lace_serve_pool_in_use",
		"lace_serve_inflight",
		"lace_serve_cache_size",
		"lace_serve_runtime_goroutines",
		"lace_serve_runtime_heap_bytes",
		"lace_serve_request_seconds",
		"lace_serve_pool_wait_seconds",
	)
	if len(missing) > 0 {
		t.Fatalf("missing families: %v", missing)
	}
}

func TestAccessLogGolden(t *testing.T) {
	in := loadFig1(t)
	var buf syncBuffer
	s, ts := newTestServer(t, in, func(c *Config) { c.AccessLog = &buf })
	fixServer(s)

	_, raw1 := post(t, ts, "/v1/merges/certain", nil, nil) // miss
	_, raw2 := post(t, ts, "/v1/merges/certain", nil, nil) // hit
	_, raw3 := post(t, ts, "/healthz", nil, nil)
	code, raw4 := post(t, ts, "/v1/explain", ExplainRequest{A: "a1", B: "a1"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("reflexive explain status = %d", code)
	}
	_ = s

	// With the clock pinned, every line is fully deterministic given
	// the response sizes — a golden test of the JSONL schema itself.
	want := []string{
		`{"ts":"2026-01-02T03:04:05Z","request_id":"req-000001","method":"POST","path":"/v1/merges/certain","endpoint":"merges/certain","status":200,"dur_ms":0,"bytes":` + fmt.Sprint(len(raw1)) + `,"cache":"miss","outcome":"ok"}`,
		`{"ts":"2026-01-02T03:04:05Z","request_id":"req-000002","method":"POST","path":"/v1/merges/certain","endpoint":"merges/certain","status":200,"dur_ms":0,"bytes":` + fmt.Sprint(len(raw2)) + `,"cache":"hit","outcome":"ok"}`,
		`{"ts":"2026-01-02T03:04:05Z","request_id":"req-000003","method":"POST","path":"/healthz","status":200,"dur_ms":0,"bytes":` + fmt.Sprint(len(raw3)) + `,"outcome":"ok"}`,
		`{"ts":"2026-01-02T03:04:05Z","request_id":"req-000004","method":"POST","path":"/v1/explain","status":400,"dur_ms":0,"bytes":` + fmt.Sprint(len(raw4)) + `,"outcome":"bad_request"}`,
	}
	got := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(got) != len(want) {
		t.Fatalf("access log has %d lines, want %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("access log line %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	in := loadFig1(t)
	var buf syncBuffer
	s, ts := newTestServer(t, in, func(c *Config) { c.AccessLog = &buf })
	fixServer(s)

	req, _ := http.NewRequest("POST", ts.URL+"/v1/merges/certain", nil)
	req.Header.Set(RequestIDHeader, "upstream-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "upstream-7" {
		t.Errorf("response %s = %q, want the client-supplied ID", RequestIDHeader, got)
	}
	if !strings.Contains(buf.String(), `"request_id":"upstream-7"`) {
		t.Errorf("access log missing upstream request ID: %s", buf.String())
	}

	// An oversized ID is replaced with a minted one.
	req, _ = http.NewRequest("POST", ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", maxRequestIDLen+1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "req-000001" {
		t.Errorf("minted ID = %q, want req-000001", got)
	}
}

func TestTraceCarriesRequestID(t *testing.T) {
	in := loadFig1(t)
	reg := obs.NewRegistry()
	var trace syncBuffer
	reg.TraceTo(&trace)
	s, ts := newTestServer(t, in, func(c *Config) { c.Recorder = reg })
	fixServer(s)
	post(t, ts, "/v1/merges/possible", nil, nil)

	var reqSpan struct {
		Span  string         `json:"span"`
		ID    int64          `json:"id"`
		Attrs map[string]any `json:"attrs"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		if !strings.Contains(line, `"span":"serve.request"`) {
			continue
		}
		if err := json.Unmarshal([]byte(line), &reqSpan); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		found = true
	}
	if !found {
		t.Fatalf("no serve.request span in trace:\n%s", trace.String())
	}
	if reqSpan.Attrs["request_id"] != "req-000001" {
		t.Errorf("span attrs = %v, want request_id req-000001", reqSpan.Attrs)
	}
	if reqSpan.Attrs["endpoint"] != "merges/possible" {
		t.Errorf("span attrs = %v, want endpoint merges/possible", reqSpan.Attrs)
	}
}

func TestAuditLogRecordsAndVerifies(t *testing.T) {
	in := loadFig1(t)
	var logBuf syncBuffer
	al := audit.New(&logBuf)
	s, ts := newTestServer(t, in, func(c *Config) { c.Audit = al })
	fixServer(s)

	post(t, ts, "/v1/merges/certain", nil, nil)
	post(t, ts, "/v1/merges/possible", nil, nil)
	post(t, ts, "/v1/explain", ExplainRequest{A: "a1", B: "a2"}, nil)

	n, err := audit.Verify(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatalf("audit verify: %v\n%s", err, logBuf.String())
	}
	if n == 0 {
		t.Fatal("audit log is empty after merge queries")
	}
	if got := s.Stats().Counter(obs.ServeAuditRecords); got != int64(n) {
		t.Errorf("serve.audit.records = %d, verifier counted %d", got, n)
	}

	// Schema spot checks: records carry the pair, decision, request ID,
	// endpoint, and for justified decisions a rule + Definition-4 steps.
	var justified, withRule int
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec audit.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Decision != audit.DecisionCertain && rec.Decision != audit.DecisionPossible {
			t.Errorf("bad decision %q", rec.Decision)
		}
		if rec.A == "" || rec.B == "" || rec.RequestID == "" || rec.Endpoint == "" {
			t.Errorf("incomplete record: %s", line)
		}
		if len(rec.Justification) > 0 {
			justified++
		}
		if rec.Rule != "" {
			withRule++
		}
	}
	if justified == 0 || withRule == 0 {
		t.Errorf("no justified records (justified=%d, with rule=%d):\n%s",
			justified, withRule, logBuf.String())
	}

	// Tampering with any line breaks the chain.
	tampered := strings.Replace(logBuf.String(), `"decision":"certain"`, `"decision":"possible"`, 1)
	if tampered == logBuf.String() {
		t.Fatal("expected at least one certain decision to tamper with")
	}
	if _, err := audit.Verify(strings.NewReader(tampered)); err == nil {
		t.Error("verifier accepted a tampered audit log")
	}
}

// TestTelemetryDifferential pins the acceptance criterion that turning
// every telemetry feature on (access log, audit log, tracing, strict
// names) leaves endpoint response bodies byte-identical to a bare
// server.
func TestTelemetryDifferential(t *testing.T) {
	in1, in2 := loadFig1(t), loadFig1(t)
	_, bare := newTestServer(t, in1, nil)

	reg := obs.NewRegistry()
	reg.SetStrict(true)
	var traceBuf, accessBuf, auditBuf syncBuffer
	reg.TraceTo(&traceBuf)
	_, full := newTestServer(t, in2, func(c *Config) {
		c.Recorder = reg
		c.AccessLog = &accessBuf
		c.Audit = audit.New(&auditBuf)
	})

	requests := []struct {
		path string
		body any
	}{
		{"/v1/merges/certain", nil},
		{"/v1/merges/possible", nil},
		{"/v1/solutions/maximal", nil},
		{"/v1/merges/certain", nil}, // cache hit on both
		{"/v1/explain", ExplainRequest{A: "a1", B: "a2"}},
		{"/v1/explain", ExplainRequest{A: "a1", B: "zzz"}}, // 400 on both
		{"/healthz", nil},
	}
	for _, rq := range requests {
		code1, body1 := post(t, bare, rq.path, rq.body, nil)
		code2, body2 := post(t, full, rq.path, rq.body, nil)
		if code1 != code2 || !bytes.Equal(body1, body2) {
			t.Errorf("%s: telemetry changed the response:\nbare %d %s\nfull %d %s",
				rq.path, code1, body1, code2, body2)
		}
	}
	if accessBuf.Len() == 0 || auditBuf.Len() == 0 || traceBuf.Len() == 0 {
		t.Errorf("telemetry sinks empty: access=%d audit=%d trace=%d",
			accessBuf.Len(), auditBuf.Len(), traceBuf.Len())
	}
}
