package serve

import (
	"sync"

	"repro/internal/db"
	"repro/internal/obs"
)

// responseCache is a thread-safe LRU cache from canonical request keys
// to marshaled 200-response bodies. Only successful responses are
// cached: interrupted or failed requests must re-run, since a retry
// with a larger budget may succeed.
type responseCache struct {
	mu         sync.Mutex
	max        int
	m          map[string]*respEntry
	head, tail *respEntry // head = most recently used
	rec        obs.Recorder
}

type respEntry struct {
	key        string
	body       []byte
	prev, next *respEntry
}

func newResponseCache(max int, rec obs.Recorder) *responseCache {
	if max < 1 {
		return nil // disabled; all methods are nil-safe
	}
	return &responseCache{max: max, m: make(map[string]*respEntry), rec: obs.OrNop(rec)}
}

// get returns the cached body for key, marking it most recently used,
// and records a hit or miss. A nil cache always misses silently.
func (c *responseCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.rec.Inc(obs.ServeCacheMisses, 1)
		return nil, false
	}
	c.rec.Inc(obs.ServeCacheHits, 1)
	c.moveToFront(e)
	return e.body, true
}

// put inserts key, evicting the least recently used entry when full.
func (c *responseCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.body = body
		c.moveToFront(e)
		return
	}
	if len(c.m) >= c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.rec.Inc(obs.ServeCacheEvictions, 1)
	}
	e := &respEntry{key: key, body: body}
	c.m[key] = e
	c.pushFront(e)
}

// len returns the number of cached responses.
func (c *responseCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *responseCache) pushFront(e *respEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *responseCache) unlink(e *respEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *responseCache) moveToFront(e *respEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// Fingerprint returns a stable content hash of the database. It keys
// the response cache (a response is only reusable against the same
// data) and is reported by /healthz so operators can tell which dataset
// — and, on a mutable server, which epoch's contents — an instance
// serves. It delegates to the database's own incremental fingerprint,
// so on the mutation path each epoch's key is O(batch), not O(database).
func Fingerprint(d *db.Database) string {
	return d.Fingerprint()
}
