package serve

import (
	"fmt"
	"strings"
)

// api.go defines the request and response JSON of the resolution
// server's /v1 endpoints. The types are shared by the server, the e2e
// test oracle and the laceload generator, so "byte-identical to the
// oracle" is checked against one encoding.
//
// Every response carries the common result envelope: on success the
// endpoint's payload, on interruption (budget or deadline) the
// Interrupted marker plus whatever partial payload the task produced,
// and on failure an Error string.

// Request is the common request body accepted by every /v1 endpoint.
// Endpoints that take no task parameters (the merge and solution sets)
// use it directly; the others embed it. All fields are optional: the
// zero request runs with the server's defaults.
type Request struct {
	// TimeoutMS bounds this request's wall-clock time in milliseconds.
	// It is capped by the server's configured maximum; 0 means the
	// server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// AnswersRequest asks for certain or possible answers to a conjunctive
// query, posed in the textual query language ("(x) : R(x,y), p(y,z)").
type AnswersRequest struct {
	Request
	Query string `json:"query"`
	// Semantics is "certain" (default) or "possible".
	Semantics string `json:"semantics,omitempty"`
}

// ExplainRequest asks for the merge status of the pair (A, B) with
// supporting evidence.
type ExplainRequest struct {
	Request
	A string `json:"a"`
	B string `json:"b"`
}

// FactJSON is one fact in wire form: a relation name and its argument
// constants, by name.
type FactJSON struct {
	Rel  string   `json:"rel"`
	Args []string `json:"args"`
}

// FactsRequest asks a mutable server to apply one atomic mutation
// batch: retractions first, then insertions. Either list may be empty;
// an empty batch still advances the epoch.
type FactsRequest struct {
	Request
	Insert  []FactJSON `json:"insert,omitempty"`
	Retract []FactJSON `json:"retract,omitempty"`
}

// Envelope is the part every response shares.
type Envelope struct {
	// Interrupted marks a partial result: the task was cut short by a
	// resource budget (HTTP 413) or a deadline (HTTP 504) and the
	// payload covers only the work completed before the stop.
	Interrupted bool `json:"interrupted,omitempty"`
	// Error describes why the request failed or was interrupted.
	Error string `json:"error,omitempty"`
}

// MergePair is one unordered merge, named by its constants.
type MergePair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// MergesResponse answers /v1/merges/certain and /v1/merges/possible.
type MergesResponse struct {
	Envelope
	Semantics string      `json:"semantics"`
	Merges    []MergePair `json:"merges"`
	Count     int         `json:"count"`
}

// AnswersResponse answers /v1/answers. For a Boolean query (no head
// variables) Answers is empty and Boolean holds the verdict; otherwise
// Answers lists the answer tuples of original constants, sorted.
type AnswersResponse struct {
	Envelope
	Semantics string     `json:"semantics"`
	Query     string     `json:"query"`
	Boolean   *bool      `json:"boolean,omitempty"`
	Answers   [][]string `json:"answers,omitempty"`
	Count     int        `json:"count"`
}

// SolutionJSON is one solution: its nontrivial equivalence classes,
// members in interning order, classes ordered by first member.
type SolutionJSON struct {
	Classes [][]string `json:"classes"`
}

// SolutionsResponse answers /v1/solutions/maximal. Solutions are
// ordered by canonical partition key — the deterministic order shared
// by the sequential and parallel searches.
type SolutionsResponse struct {
	Envelope
	Solutions []SolutionJSON `json:"solutions"`
	Count     int            `json:"count"`
}

// ExplainResponse answers /v1/explain.
type ExplainResponse struct {
	Envelope
	Pair MergePair `json:"pair"`
	// Status is "certain", "possible" or "impossible".
	Status string `json:"status"`
	// Text is the human-readable explanation (a Definition-4 derivation
	// for certain merges, witness/counterexample solutions for possible
	// ones, the obstruction for impossible ones).
	Text string `json:"text"`
}

// FactsResponse answers POST /v1/facts.
type FactsResponse struct {
	Envelope
	// Epoch is the new epoch the batch produced.
	Epoch uint64 `json:"epoch"`
	// Inserted / Retracted count the facts actually added and removed.
	Inserted  int `json:"inserted"`
	Retracted int `json:"retracted"`
	// Fingerprint is the new database's content fingerprint; cached
	// responses from earlier epochs are keyed under the old one and can
	// no longer be served.
	Fingerprint string `json:"db_fingerprint"`
	// DirtyShards counts the previous epoch's shard components the batch
	// touched (-1 when unavailable: monolithic server, or the previous
	// epoch was never resolved).
	DirtyShards int `json:"dirty_shards"`
}

// HealthResponse answers /healthz.
type HealthResponse struct {
	Status      string `json:"status"`
	Fingerprint string `json:"db_fingerprint"`
	Facts       int    `json:"facts"`
	Workers     int    `json:"workers"`
	Epoch       uint64 `json:"epoch"`
	Mutable     bool   `json:"mutable,omitempty"`
	Draining    bool   `json:"draining,omitempty"`
}

// canonicalAnswers normalizes an answers request into its cache key
// form. The timeout is deliberately excluded: it cannot change a
// successful response, only whether one is produced.
func (r AnswersRequest) canonical() (string, error) {
	sem := r.Semantics
	if sem == "" {
		sem = "certain"
	}
	if sem != "certain" && sem != "possible" {
		return "", fmt.Errorf("unknown semantics %q (want certain or possible)", r.Semantics)
	}
	return sem + "\x00" + strings.TrimSpace(r.Query), nil
}

// canonical normalizes an explain request into its cache key form
// (unordered pair).
func (r ExplainRequest) canonical() (string, error) {
	a, b := strings.TrimSpace(r.A), strings.TrimSpace(r.B)
	if a == "" || b == "" {
		return "", fmt.Errorf("both constants of the pair are required")
	}
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b, nil
}
