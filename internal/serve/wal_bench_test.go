package serve

// wal_bench_test.go measures the write path's durability tax (E22):
// the same alternating insert/retract mutation stream over HTTP against
// a WAL server with fsync on (audit.Options{Durable: true}) and off
// (flush-only appends). Each mode reports writes/sec and p50/p99 write
// latency.
//
// When LACE_BENCH_GUARD=1, BenchmarkMutationWAL writes BENCH_wal.json
// next to the package and fails if the fsync-OFF path drops more than
// 25% below the committed floor in testdata/wal_bench_baseline.json.
// Only the fsync-off path is guarded: fsync latency is hardware truth
// (storage-dependent by an order of magnitude across CI runners), while
// the fsync-off path is pure code whose regressions are ours.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/audit"
)

// walBenchMode is one mode's measurements in BENCH_wal.json.
type walBenchMode struct {
	Writes int     `json:"writes"`
	WPS    float64 `json:"writes_per_sec"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// walBenchResult is the BENCH_wal.json schema.
type walBenchResult struct {
	FsyncOn  walBenchMode `json:"fsync_on"`
	FsyncOff walBenchMode `json:"fsync_off"`
	// FsyncTaxP50MS is the per-write durability cost at the median.
	FsyncTaxP50MS float64 `json:"fsync_tax_p50_ms"`
}

type walBenchBaseline struct {
	FsyncOffWPS float64 `json:"fsync_off_wps"`
}

// runMutationBench drives n alternating insert/retract batches through
// POST /v1/facts on a WAL server whose log syncs per mutation iff
// durable.
func runMutationBench(b *testing.B, n int, durable bool) walBenchMode {
	b.Helper()
	in := loadFig1(b)
	path := filepath.Join(b.TempDir(), "wal.jsonl")
	alog, _, err := audit.Open(path, audit.Options{Durable: durable})
	if err != nil {
		b.Fatal(err)
	}
	defer alog.Close()
	s, err := New(Config{
		DB: in.db, Spec: in.spec, Sims: in.sims,
		Workers: 4, Mutable: true, WAL: true, Audit: alog,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ins := []byte(`{"insert":[{"rel":"Author","args":["bench","b@x.y","Oslo"]}]}`)
	del := []byte(`{"retract":[{"rel":"Author","args":["bench","b@x.y","Oslo"]}]}`)
	lat := make([]time.Duration, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		body := ins
		if i%2 == 1 {
			body = del
		}
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/v1/facts", "application/json", bytes.NewReader(body))
		lat = append(lat, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("write %d: status %d", i, resp.StatusCode)
		}
	}
	total := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return walBenchMode{
		Writes: n,
		WPS:    float64(n) / total.Seconds(),
		P50MS:  float64(percentile(lat, 0.50)) / float64(time.Millisecond),
		P99MS:  float64(percentile(lat, 0.99)) / float64(time.Millisecond),
	}
}

// BenchmarkMutationWAL: the guarded E22 measurement, both modes in one
// run so the tax is computed on the same hardware moment.
func BenchmarkMutationWAL(b *testing.B) {
	res := walBenchResult{
		FsyncOff: runMutationBench(b, b.N, false),
		FsyncOn:  runMutationBench(b, b.N, true),
	}
	res.FsyncTaxP50MS = res.FsyncOn.P50MS - res.FsyncOff.P50MS
	b.ReportMetric(res.FsyncOff.WPS, "nofsync-w/s")
	b.ReportMetric(res.FsyncOn.WPS, "fsync-w/s")
	b.ReportMetric(res.FsyncOff.P50MS, "nofsync-p50-ms")
	b.ReportMetric(res.FsyncOn.P50MS, "fsync-p50-ms")
	b.ReportMetric(res.FsyncOn.P99MS, "fsync-p99-ms")

	if os.Getenv("LACE_BENCH_GUARD") != "1" || b.N < 100 {
		return
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_wal.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	baseRaw, err := os.ReadFile("testdata/wal_bench_baseline.json")
	if err != nil {
		b.Fatal(err)
	}
	var base walBenchBaseline
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		b.Fatal(err)
	}
	if floor := base.FsyncOffWPS * 0.75; res.FsyncOff.WPS < floor {
		b.Fatalf("write-path regression: %.1f writes/s (fsync off) < %.1f (75%% of committed %.1f baseline)",
			res.FsyncOff.WPS, floor, base.FsyncOffWPS)
	}
	b.Logf("guard: %.1f writes/s (fsync off) >= 75%% of %.1f; fsync tax %.3f ms at p50",
		res.FsyncOff.WPS, base.FsyncOffWPS, res.FsyncTaxP50MS)
}

// TestWALBenchBaselineReadable pins the committed baseline's shape.
func TestWALBenchBaselineReadable(t *testing.T) {
	raw, err := os.ReadFile("testdata/wal_bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base walBenchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.FsyncOffWPS <= 0 {
		t.Fatalf("baseline fsync_off_wps = %v, want positive", base.FsyncOffWPS)
	}
	_ = fmt.Sprintf("%v", base)
}
