package serve

// bench_test.go measures the resolution server end to end: a mixed
// request stream over the Section 7 workload instance (WorkloadLACE
// served over HTTP) and an uncached Figure 1 stream. Each benchmark
// reports requests/sec plus p50/p99 latency.
//
// When LACE_BENCH_GUARD=1 (set by the CI serve job, not by the normal
// test run), BenchmarkServeWorkloadLACE additionally writes
// BENCH_serve.json next to the package and fails if throughput drops
// more than 25% below the committed floor in
// testdata/bench_baseline.json. The floor is deliberately conservative
// (an order of magnitude under a laptop run) so the guard only trips on
// real regressions, not on CI noise.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/obs"
	wl "repro/internal/workload"
)

// benchResult is the BENCH_serve.json schema.
type benchResult struct {
	Requests     int     `json:"requests"`
	RPS          float64 `json:"rps"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

type benchBaseline struct {
	RPS float64 `json:"rps"`
}

// workloadInstance generates the benchmark's served instance: the
// bibliographic workload at a scale where the complete solution-space
// search stays sub-second, so cold requests terminate and the cache
// carries the steady state.
func workloadInstance(tb testing.TB) instance {
	tb.Helper()
	cfg := wl.DefaultConfig(13)
	cfg.Authors, cfg.Papers, cfg.Conferences = 8, 12, 4
	ds, err := wl.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return instance{db: ds.DB, spec: ds.Spec, sims: ds.Sims}
}

// benchMix is the request stream: the full endpoint surface, weighted
// toward the decision endpoints a resolution client would poll.
func benchMix() []wire {
	return []wire{
		{"/v1/merges/certain", ""},
		{"/v1/merges/possible", ""},
		{"/v1/solutions/maximal", ""},
		{"/v1/answers", `{"query":"(x) : Conference(x,n,y), Chair(x,a)"}`},
		{"/v1/answers", `{"query":"(p,x) : Wrote(p,x,n), Author(x,e,u)","semantics":"possible"}`},
		{"/v1/explain", `{"a":"a0","b":"a1"}`},
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// BenchmarkServeWorkloadLACE: the guarded serving benchmark.
func BenchmarkServeWorkloadLACE(b *testing.B) {
	in := workloadInstance(b)
	rec := obs.NewRegistry()
	s, err := New(Config{DB: in.db, Spec: in.spec, Sims: in.sims, Workers: 4, Recorder: rec})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mix := benchMix()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		w := mix[i%len(mix)]
		t0 := time.Now()
		code, body := fire(b, http.DefaultClient, ts.URL, w)
		lat = append(lat, time.Since(t0))
		if code != http.StatusOK {
			b.Fatalf("%s: status %d body %s", w.path, code, body)
		}
	}
	total := time.Since(start)
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	snap := s.Stats()
	hits := snap.Counter(obs.ServeCacheHits)
	misses := snap.Counter(obs.ServeCacheMisses)
	res := benchResult{
		Requests: b.N,
		RPS:      float64(b.N) / total.Seconds(),
		P50MS:    float64(percentile(lat, 0.50)) / float64(time.Millisecond),
		P99MS:    float64(percentile(lat, 0.99)) / float64(time.Millisecond),
	}
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	b.ReportMetric(res.RPS, "req/s")
	b.ReportMetric(res.P50MS, "p50-ms")
	b.ReportMetric(res.P99MS, "p99-ms")
	b.ReportMetric(res.CacheHitRate, "cache-hit-rate")

	// The guard needs a steady-state sample: skip the N=1 probe pass the
	// benchmark runner always starts with (run the CI job with
	// -benchtime=400x or similar).
	if os.Getenv("LACE_BENCH_GUARD") != "1" || b.N < 100 {
		return
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	baseRaw, err := os.ReadFile("testdata/bench_baseline.json")
	if err != nil {
		b.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		b.Fatal(err)
	}
	if floor := base.RPS * 0.75; res.RPS < floor {
		b.Fatalf("throughput regression: %.1f req/s < %.1f (75%% of committed %.1f baseline)",
			res.RPS, floor, base.RPS)
	}
	b.Logf("guard: %.1f req/s >= 75%% of %.1f baseline (hit rate %.2f)",
		res.RPS, base.RPS, res.CacheHitRate)
}

// BenchmarkServeUncachedFigure1: per-request engine cost without the
// response cache, on the running example.
func BenchmarkServeUncachedFigure1(b *testing.B) {
	in := loadFig1(b)
	s, err := New(Config{DB: in.db, Spec: in.spec, Sims: in.sims, Workers: 4, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := []byte(`{"query":"(x) : Conference(x,n,y), Chair(x,a)"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/answers", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// TestBenchBaselineReadable pins the committed baseline's shape so a
// malformed edit fails fast rather than in the guarded CI job.
func TestBenchBaselineReadable(t *testing.T) {
	raw, err := os.ReadFile("testdata/bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.RPS <= 0 {
		t.Fatalf("baseline rps = %v, want positive", base.RPS)
	}
	_ = fmt.Sprintf("%v", base)
}
