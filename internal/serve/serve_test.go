package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/fixtures"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/sim"
)

// --- fixture loading --------------------------------------------------

type instance struct {
	db   *db.Database
	spec *rules.Spec
	sims *sim.Registry
}

// loadBib parses the bibliography dataset shipped as cmd/lace testdata.
// Each call parses afresh, so the oracle engine and the server under
// test never share mutable state.
func loadBib(t testing.TB) instance {
	t.Helper()
	read := func(name string) string {
		raw, err := os.ReadFile("../../cmd/lace/testdata/" + name)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	d, err := db.ParseDatabase(read("bib.facts"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sims := sim.Default()
	tbl := sim.NewTable("approx")
	for _, line := range strings.Split(read("approx.tsv"), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("approx.tsv: bad line %q", line)
		}
		tbl.Add(parts[0], parts[1])
	}
	sims.Register(tbl)
	spec, err := rules.ParseSpec(read("bib.spec"), d.Schema(), d.Interner(), sims)
	if err != nil {
		t.Fatal(err)
	}
	return instance{db: d, spec: spec, sims: sims}
}

// loadFig1 builds the running-example instance from internal/fixtures.
func loadFig1(t testing.TB) instance {
	t.Helper()
	f := fixtures.New()
	return instance{db: f.DB, spec: f.Spec, sims: f.Sims}
}

// oracle builds a sequential (Parallelism 1) engine over its own parse
// of the same instance — the reference the server must agree with.
func (in instance) oracle(t testing.TB) *core.Engine {
	t.Helper()
	eng, err := core.New(in.db, in.spec, in.sims, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// newTestServer builds a Server over the instance plus an httptest
// frontend. mod may adjust the Config before construction.
func newTestServer(t testing.TB, in instance, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{DB: in.db, Spec: in.spec, Sims: in.sims, Workers: 4}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// post issues a JSON request and decodes the response into out,
// returning the status code and raw body.
func post(t testing.TB, ts *httptest.Server, path string, req any, out any) (int, []byte) {
	t.Helper()
	var body io.Reader
	if req != nil {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(raw)
	}
	resp, err := http.Post(ts.URL+path, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s: bad JSON %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, raw
}

// --- endpoint tests ---------------------------------------------------

func TestHealthz(t *testing.T) {
	in := loadBib(t)
	_, ts := newTestServer(t, in, nil)
	var h HealthResponse
	code, _ := post(t, ts, "/healthz", nil, &h)
	if code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Status != "ok" || h.Facts != in.db.NumFacts() || h.Workers != 4 {
		t.Errorf("healthz = %+v", h)
	}
	if h.Fingerprint != Fingerprint(in.db) {
		t.Errorf("fingerprint %q != recomputed %q", h.Fingerprint, Fingerprint(in.db))
	}
}

func TestMergesEndpointsMatchOracle(t *testing.T) {
	for _, fix := range []struct {
		name string
		load func(testing.TB) instance
	}{{"bib", loadBib}, {"figure1", loadFig1}} {
		t.Run(fix.name, func(t *testing.T) {
			in := fix.load(t)
			eng := fix.load(t).oracle(t)
			_, ts := newTestServer(t, in, nil)

			inn := in.db.Interner()
			for _, sem := range []string{"certain", "possible"} {
				var want []MergePair
				var err error
				if sem == "certain" {
					cm, err2 := eng.CertainMerges()
					err = err2
					for _, p := range cm {
						want = append(want, MergePair{A: inn.Name(p.A), B: inn.Name(p.B)})
					}
				} else {
					pm, err2 := eng.PossibleMerges()
					err = err2
					for _, p := range pm {
						want = append(want, MergePair{A: inn.Name(p.A), B: inn.Name(p.B)})
					}
				}
				if err != nil {
					t.Fatal(err)
				}
				var got MergesResponse
				code, _ := post(t, ts, "/v1/merges/"+sem, nil, &got)
				if code != http.StatusOK {
					t.Fatalf("%s status = %d", sem, code)
				}
				if got.Semantics != sem || got.Count != len(want) {
					t.Errorf("%s: count %d want %d", sem, got.Count, len(want))
				}
				if len(want) == 0 {
					want = []MergePair{}
				}
				if !reflect.DeepEqual(got.Merges, want) {
					t.Errorf("%s merges = %v, want %v", sem, got.Merges, want)
				}
			}
		})
	}
}

func TestMaximalSolutionsMatchOracle(t *testing.T) {
	in := loadBib(t)
	eng := loadBib(t).oracle(t)
	_, ts := newTestServer(t, in, nil)

	ms, err := eng.MaximalSolutions()
	if err != nil {
		t.Fatal(err)
	}
	inn := in.db.Interner()
	want := []SolutionJSON{}
	for _, m := range ms {
		sol := SolutionJSON{Classes: [][]string{}}
		for _, cls := range m.NontrivialClasses() {
			names := make([]string, len(cls))
			for i, c := range cls {
				names[i] = inn.Name(c)
			}
			sol.Classes = append(sol.Classes, names)
		}
		want = append(want, sol)
	}

	var got SolutionsResponse
	code, _ := post(t, ts, "/v1/solutions/maximal", nil, &got)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if got.Count != 2 || !reflect.DeepEqual(got.Solutions, want) {
		t.Errorf("solutions = %+v, want %+v", got.Solutions, want)
	}
}

func TestAnswersMatchOracle(t *testing.T) {
	in := loadBib(t)
	oeng := loadBib(t).oracle(t)
	_, ts := newTestServer(t, in, nil)

	const query = "(x) : Conference(x,n,y), Chair(x,a)"
	oin := oeng.DB().Interner()
	q, err := rules.ParseQuery(query, oeng.DB().Schema(), oin.Clone(), in.sims)
	if err != nil {
		t.Fatal(err)
	}

	for _, sem := range []string{"certain", "possible"} {
		var tuples [][]db.Const
		if sem == "certain" {
			tuples, err = oeng.CertainAnswersCtx(context.Background(), q)
		} else {
			tuples, err = oeng.PossibleAnswersCtx(context.Background(), q)
		}
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]string, len(tuples))
		for i, tup := range tuples {
			want[i] = make([]string, len(tup))
			for j, c := range tup {
				want[i][j] = oin.Name(c)
			}
		}

		var got AnswersResponse
		code, _ := post(t, ts, "/v1/answers", AnswersRequest{Query: query, Semantics: sem}, &got)
		if code != http.StatusOK {
			t.Fatalf("%s status = %d", sem, code)
		}
		if got.Count != len(want) || !reflect.DeepEqual(got.Answers, want) {
			t.Errorf("%s answers = %v, want %v", sem, got.Answers, want)
		}
	}

	// The pinned CLI expectation: certain answers are exactly c2 and c3.
	var got AnswersResponse
	post(t, ts, "/v1/answers", AnswersRequest{Query: query}, &got)
	if !reflect.DeepEqual(got.Answers, [][]string{{"c2"}, {"c3"}}) {
		t.Errorf("certain answers = %v, want [[c2] [c3]]", got.Answers)
	}
}

func TestBooleanAnswers(t *testing.T) {
	in := loadBib(t)
	_, ts := newTestServer(t, in, nil)
	const q = `Author(x,"mnk@tku.jp",u), Author(x,"mnk@gm.com",u2)`

	var got AnswersResponse
	code, _ := post(t, ts, "/v1/answers", AnswersRequest{Query: q, Semantics: "possible"}, &got)
	if code != http.StatusOK || got.Boolean == nil || !*got.Boolean {
		t.Errorf("possible boolean: code %d, resp %+v", code, got)
	}
	got = AnswersResponse{}
	code, _ = post(t, ts, "/v1/answers", AnswersRequest{Query: q, Semantics: "certain"}, &got)
	if code != http.StatusOK || got.Boolean == nil || *got.Boolean {
		t.Errorf("certain boolean: code %d, resp %+v", code, got)
	}
}

func TestExplainMatchesOracle(t *testing.T) {
	in := loadBib(t)
	oeng := loadBib(t).oracle(t)
	_, ts := newTestServer(t, in, nil)
	oin := oeng.DB().Interner()

	for _, pair := range [][2]string{{"a1", "a2"}, {"p4", "p5"}, {"c3", "c4"}} {
		a, _ := oin.Lookup(pair[0])
		b, _ := oin.Lookup(pair[1])
		ox, err := oeng.ExplainMerge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var got ExplainResponse
		code, _ := post(t, ts, "/v1/explain", ExplainRequest{A: pair[0], B: pair[1]}, &got)
		if code != http.StatusOK {
			t.Fatalf("explain %v status = %d", pair, code)
		}
		if got.Status != ox.Status.String() {
			t.Errorf("explain %v status = %q, want %q", pair, got.Status, ox.Status.String())
		}
		if got.Text != ox.Format(oin) {
			t.Errorf("explain %v text differs from oracle:\n%s\n---\n%s", pair, got.Text, ox.Format(oin))
		}
	}
}

func TestBadRequests(t *testing.T) {
	in := loadBib(t)
	_, ts := newTestServer(t, in, nil)

	cases := []struct {
		path string
		body string
	}{
		{"/v1/answers", `{"query":""}`},
		{"/v1/answers", `{"query":"(x) : Nope(x)"}`},
		{"/v1/answers", `{"query":"(x) : Author(x,e,u)","semantics":"maybe"}`},
		{"/v1/explain", `{"a":"a1","b":"zzz"}`},
		{"/v1/explain", `{"a":"a1","b":"a1"}`},
		{"/v1/explain", `{"a":"","b":"a1"}`},
		{"/v1/merges/certain", `{not json`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var env Envelope
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		json.Unmarshal(raw, &env)
		if resp.StatusCode != http.StatusBadRequest || env.Error == "" {
			t.Errorf("%s %s: status %d body %s, want 400 with error", c.path, c.body, resp.StatusCode, raw)
		}
	}
}

func TestBudgetExhausted(t *testing.T) {
	in := loadBib(t)
	s, ts := newTestServer(t, in, func(c *Config) { c.MaxStates = 1 })

	var got SolutionsResponse
	code, _ := post(t, ts, "/v1/solutions/maximal", nil, &got)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", code)
	}
	if !got.Interrupted || got.Error == "" {
		t.Errorf("interrupted marker missing: %+v", got.Envelope)
	}
	if n := s.Stats().Counter(obs.ServeInterrupted); n < 1 {
		t.Errorf("serve.interrupted = %d, want >= 1", n)
	}
	// Interrupted responses are never cached.
	if got := s.cache.len(); got != 0 {
		t.Errorf("cache holds %d entries after a 413", got)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	in := loadBib(t)
	_, ts := newTestServer(t, in, func(c *Config) {
		c.DefaultTimeout = time.Nanosecond
		c.MaxTimeout = time.Nanosecond
	})
	var got MergesResponse
	code, _ := post(t, ts, "/v1/merges/certain", nil, &got)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
	if !got.Interrupted {
		t.Error("interrupted marker missing on deadline")
	}
}

func TestResponseCacheHit(t *testing.T) {
	in := loadBib(t)
	s, ts := newTestServer(t, in, nil)

	req := AnswersRequest{Query: "(x) : Conference(x,n,y), Chair(x,a)"}
	_, first := post(t, ts, "/v1/answers", req, nil)

	// Different timeout, same canonical form: must hit the same entry.
	req.TimeoutMS = 30_000
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/answers", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	second, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "hit" {
		t.Error("second identical request missed the cache")
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached body differs:\n%s\n---\n%s", first, second)
	}
	snap := s.Stats()
	if snap.Counter(obs.ServeCacheHits) < 1 || snap.Counter(obs.ServeCacheMisses) < 1 {
		t.Errorf("cache counters: hits %d misses %d", snap.Counter(obs.ServeCacheHits), snap.Counter(obs.ServeCacheMisses))
	}
}

func TestCacheDisabled(t *testing.T) {
	in := loadFig1(t)
	s, ts := newTestServer(t, in, func(c *Config) { c.CacheSize = -1 })
	_, first := post(t, ts, "/v1/merges/certain", nil, nil)
	code, second := post(t, ts, "/v1/merges/certain", nil, nil)
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Errorf("disabled-cache responses differ: %d %s vs %s", code, first, second)
	}
	if s.cache != nil {
		t.Error("negative CacheSize did not disable the cache")
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	in := loadFig1(t)
	_, ts := newTestServer(t, in, nil)
	post(t, ts, "/v1/merges/certain", nil, nil)

	var snap obs.Snapshot
	code, _ := post(t, ts, "/metrics.json", nil, &snap)
	if code != http.StatusOK {
		t.Fatalf("metrics.json status = %d", code)
	}
	if snap.Counter(obs.ServeRequests) < 1 {
		t.Errorf("snapshot missing serve.requests: %+v", snap.Counters)
	}
	if snap.GaugeValue(obs.ServeWorkers) != 4 {
		t.Errorf("serve.workers gauge = %d", snap.GaugeValue(obs.ServeWorkers))
	}
	// The snapshot carries the request-latency histogram for the
	// endpoint just exercised, consistent with its duration summary.
	h, ok := snap.Histograms[obs.ServeRequestPrefix+"merges/certain"]
	if !ok || h.Count < 1 {
		t.Errorf("missing per-endpoint histogram: %+v", snap.Histograms)
	}
	if snap.Histograms[obs.SpanServeRequest].Count != snap.Durations[obs.SpanServeRequest].Count {
		t.Errorf("histogram/duration count mismatch for %s", obs.SpanServeRequest)
	}
}

func TestShutdownRefusesNewRequests(t *testing.T) {
	in := loadFig1(t)
	s, ts := newTestServer(t, in, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	var env Envelope
	code, _ := post(t, ts, "/v1/merges/certain", nil, &env)
	if code != http.StatusServiceUnavailable || env.Error == "" {
		t.Errorf("post-shutdown request: status %d, env %+v", code, env)
	}
	var h HealthResponse
	post(t, ts, "/healthz", nil, &h)
	if !h.Draining {
		t.Error("healthz does not report draining")
	}
}

func TestMethodAndEmptyBody(t *testing.T) {
	in := loadFig1(t)
	_, ts := newTestServer(t, in, nil)
	// GET with no body must behave like the zero request.
	resp, err := http.Get(ts.URL + "/v1/merges/certain")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("bare GET status = %d", resp.StatusCode)
	}
	var got MergesResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Semantics != "certain" {
		t.Errorf("bare GET semantics = %q", got.Semantics)
	}
}

func ExampleFingerprint() {
	f := fixtures.New()
	fmt.Println(len(Fingerprint(f.DB)) > 0)
	// Output: true
}
