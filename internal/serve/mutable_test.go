package serve

// mutable_test.go covers the streaming server: POST /v1/facts, epoch
// advancement, response-cache staleness across mutations, and an e2e
// differential check that a mutated server answers exactly like an
// oracle engine built from scratch over the same final instance.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/fixtures"
	"repro/internal/rules"
)

func postFacts(t *testing.T, ts *httptest.Server, req FactsRequest) (int, FactsResponse) {
	t.Helper()
	var resp FactsResponse
	code, _ := post(t, ts, "/v1/facts", req, &resp)
	return code, resp
}

func TestFactsReadOnly(t *testing.T) {
	in := loadFig1(t)
	_, ts := newTestServer(t, in, nil) // Mutable not set
	var env Envelope
	code, _ := post(t, ts, "/v1/facts", FactsRequest{
		Insert: []FactJSON{{Rel: "Author", Args: []string{"a9", "x@y.z", "Oslo"}}},
	}, &env)
	if code != http.StatusForbidden {
		t.Fatalf("facts on read-only server: status = %d, want 403", code)
	}
	if !strings.Contains(env.Error, "read-only") {
		t.Errorf("error = %q, want read-only message", env.Error)
	}
}

func TestFactsRejectsBadBatch(t *testing.T) {
	in := loadFig1(t)
	s, ts := newTestServer(t, in, func(c *Config) { c.Mutable = true })
	var env Envelope
	code, _ := post(t, ts, "/v1/facts", FactsRequest{
		Insert: []FactJSON{{Rel: "NoSuchRel", Args: []string{"a"}}},
	}, &env)
	if code != http.StatusBadRequest {
		t.Fatalf("bad batch: status = %d, want 400", code)
	}
	if env.Error == "" {
		t.Error("bad batch: empty error")
	}
	if got := s.Epoch(); got != 0 {
		t.Errorf("epoch after rejected batch = %d, want 0", got)
	}
}

// mergesWithCacheHeader fetches /v1/merges/possible and returns the
// X-Cache header alongside the decoded response.
func mergesWithCacheHeader(t *testing.T, ts *httptest.Server) (string, MergesResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/merges/possible", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merges status = %d", resp.StatusCode)
	}
	var mr MergesResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatalf("merges: bad JSON: %v", err)
	}
	return resp.Header.Get("X-Cache"), mr
}

// TestCacheStalenessAcrossMutation pins the response-cache contract on
// the mutation path: miss, hit, then POST /v1/facts changes the
// fingerprint (and with it every cache key), then miss again with fresh
// results, then hit again on the new epoch.
func TestCacheStalenessAcrossMutation(t *testing.T) {
	in := loadFig1(t)
	s, ts := newTestServer(t, in, func(c *Config) { c.Mutable = true })

	xc, first := mergesWithCacheHeader(t, ts)
	if xc == "hit" {
		t.Fatal("first request reported a cache hit")
	}
	xc, _ = mergesWithCacheHeader(t, ts)
	if xc != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", xc)
	}

	fpBefore := s.DBFingerprint()
	code, fr := postFacts(t, ts, FactsRequest{
		Retract: []FactJSON{{Rel: "Author", Args: []string{"a6", fixtures.E6, "Tokyo"}}},
		Insert:  []FactJSON{{Rel: "Author", Args: []string{"a6", fixtures.E6, "Osaka"}}},
	})
	if code != http.StatusOK {
		t.Fatalf("facts status = %d: %+v", code, fr)
	}
	if fr.Epoch != 1 || fr.Inserted != 1 || fr.Retracted != 1 {
		t.Fatalf("facts response = %+v, want epoch 1, 1 insert, 1 retract", fr)
	}
	if fr.Fingerprint == fpBefore {
		t.Fatal("fingerprint unchanged by a content-changing batch")
	}
	if got := s.DBFingerprint(); got != fr.Fingerprint {
		t.Errorf("server fingerprint %q != response %q", got, fr.Fingerprint)
	}

	xc, second := mergesWithCacheHeader(t, ts)
	if xc == "hit" {
		t.Fatal("request after mutation served the stale cached epoch")
	}
	if len(second.Merges) == len(first.Merges) {
		// Moving a6 to Osaka breaks sigma2's same-institution premise
		// for the a6/a7 pair, so the possible-merge set must shrink.
		t.Errorf("possible merges unchanged after mutation: %d", len(second.Merges))
	}
	xc, _ = mergesWithCacheHeader(t, ts)
	if xc != "hit" {
		t.Fatalf("repeat request on the new epoch X-Cache = %q, want hit", xc)
	}

	var h HealthResponse
	if code, _ := post(t, ts, "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if h.Epoch != 1 || !h.Mutable {
		t.Errorf("healthz = %+v, want epoch 1, mutable", h)
	}
}

// TestMutableE2EMatchesOracle applies a batch sequence through POST
// /v1/facts (monolithic and sharded servers) and, after each epoch,
// checks merges and answers against a from-scratch oracle engine over
// an independently built copy of the same instance.
func TestMutableE2EMatchesOracle(t *testing.T) {
	batches := []FactsRequest{
		{
			Retract: []FactJSON{{Rel: "Author", Args: []string{"a6", fixtures.E6, "Tokyo"}}},
			Insert:  []FactJSON{{Rel: "Author", Args: []string{"a6", fixtures.E6, "Osaka"}}},
		},
		{
			Insert: []FactJSON{{Rel: "Author", Args: []string{"a8", fixtures.E6, "Tokyo"}}},
		},
		{
			Retract: []FactJSON{{Rel: "Author", Args: []string{"a6", fixtures.E6, "Osaka"}}},
			Insert:  []FactJSON{{Rel: "Author", Args: []string{"a6", fixtures.E6, "Tokyo"}}},
		},
	}
	for _, mode := range []struct {
		name    string
		sharded bool
	}{{"monolithic", false}, {"sharded", true}} {
		t.Run(mode.name, func(t *testing.T) {
			in := loadFig1(t)
			_, ts := newTestServer(t, in, func(c *Config) {
				c.Mutable = true
				c.Sharded = mode.sharded
			})

			// The oracle lineage: an independent parse of the fixture,
			// mutated by the same batches through db.Apply directly.
			ofix := loadFig1(t)
			od := ofix.db

			check := func(epoch uint64) {
				t.Helper()
				oeng, err := core.New(od, ofix.spec, ofix.sims, core.Options{Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				oin := od.Interner()
				for _, sem := range []string{"certain", "possible"} {
					var mr MergesResponse
					if code, _ := post(t, ts, "/v1/merges/"+sem, nil, &mr); code != http.StatusOK {
						t.Fatalf("epoch %d: merges/%s status = %d", epoch, sem, code)
					}
					pairs, err := oeng.CertainMerges()
					if sem == "possible" {
						pairs, err = oeng.PossibleMerges()
					}
					if err != nil {
						t.Fatal(err)
					}
					want := make([]string, 0, len(pairs))
					for _, p := range pairs {
						want = append(want, oin.Name(p.A)+"|"+oin.Name(p.B))
					}
					got := make([]string, 0, len(mr.Merges))
					for _, p := range mr.Merges {
						got = append(got, p.A+"|"+p.B)
					}
					sort.Strings(got)
					sort.Strings(want)
					if strings.Join(got, ",") != strings.Join(want, ",") {
						t.Errorf("epoch %d: merges/%s = %v, oracle %v", epoch, sem, got, want)
					}
				}

				var ar AnswersResponse
				q := AnswersRequest{Query: "(x, y) : CorrAuth(p, x), CorrAuth(p, y)", Semantics: "possible"}
				if code, _ := post(t, ts, "/v1/answers", q, &ar); code != http.StatusOK {
					t.Fatalf("epoch %d: answers status = %d", epoch, code)
				}
				oq, err := rules.ParseQuery(q.Query, od.Schema(), nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				tuples, err := oeng.PossibleAnswers(oq)
				if err != nil {
					t.Fatal(err)
				}
				var want []string
				for _, tp := range tuples {
					row := make([]string, len(tp))
					for i, c := range tp {
						row[i] = oin.Name(c)
					}
					want = append(want, strings.Join(row, "|"))
				}
				var got []string
				for _, row := range ar.Answers {
					got = append(got, strings.Join(row, "|"))
				}
				sort.Strings(got)
				sort.Strings(want)
				if strings.Join(got, ",") != strings.Join(want, ",") {
					t.Errorf("epoch %d: answers = %v, oracle %v", epoch, got, want)
				}
			}

			check(0)
			for i, b := range batches {
				code, fr := postFacts(t, ts, b)
				if code != http.StatusOK {
					t.Fatalf("batch %d: status = %d: %+v", i, code, fr)
				}
				if fr.Epoch != uint64(i+1) {
					t.Fatalf("batch %d: epoch = %d, want %d", i, fr.Epoch, i+1)
				}
				nd, _, _, err := db.Apply(od, factSpecs(b.Insert), factSpecs(b.Retract))
				if err != nil {
					t.Fatalf("batch %d: oracle apply: %v", i, err)
				}
				od = nd
				if got := Fingerprint(od); got != fr.Fingerprint {
					t.Fatalf("batch %d: oracle fingerprint %q != server %q", i, got, fr.Fingerprint)
				}
				check(fr.Epoch)
			}
		})
	}
}
