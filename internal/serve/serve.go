// Package serve is the request-oriented front end over the LACE engine:
// a long-running HTTP JSON server that loads one (database,
// specification) pair at startup, pre-builds a shared core.Session, and
// answers the paper's reasoning problems as online queries —
// certain/possible merges, certain/possible conjunctive-query answers,
// maximal solutions and merge explanations — from a bounded pool of
// forked engines.
//
// Request handling reuses the repository's concurrency and budget
// layers: every request runs under a context deadline (the PR 4 budget
// discipline), searches inside a request may fan out over the PR 3
// parallel searcher, and a tripped budget or deadline produces a
// partial-result JSON body with HTTP status 413 (state budget
// exhausted) or 504 (deadline), never a hung connection. Successful
// responses are cached in an LRU keyed by (endpoint, canonical request
// form, database fingerprint), with hit/miss/eviction counters in the
// shared obs registry; /metrics dumps the recorder snapshot and
// /healthz reports liveness. Shutdown drains: new requests are refused,
// in-flight ones get a grace period, then their contexts are cancelled
// so even pathological searches terminate.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/limits"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/sim"
)

// Config configures a Server. DB, Spec and Sims are required; zero
// values elsewhere pick the documented defaults.
type Config struct {
	DB   *db.Database
	Spec *rules.Spec
	Sims *sim.Registry

	// Workers bounds the number of requests evaluated concurrently (the
	// engine pool size); excess requests queue. 0 means GOMAXPROCS.
	Workers int
	// Parallelism is passed to core.Options: the fan-out of the
	// solution-space search inside one request. 0 means GOMAXPROCS,
	// 1 forces the sequential searcher.
	Parallelism int
	// MaxStates is the per-request search-state budget (core
	// Options.MaxStates); a request that exhausts it gets a 413
	// partial-result response. 0 means the core default.
	MaxStates int
	// DefaultTimeout bounds requests that do not ask for a deadline;
	// 0 means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines. 0 means
	// DefaultMaxTimeout.
	MaxTimeout time.Duration
	// CacheSize bounds the response cache in entries. 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// Recorder receives the server's and the engines' instrumentation.
	// Nil means a fresh live registry (so /metrics always works).
	Recorder *obs.Registry
	// AccessLog, when non-nil, receives one JSON line per request
	// (method, path, status, duration, cache disposition, outcome,
	// request ID). The writer is serialized by the server.
	AccessLog io.Writer
	// Audit, when non-nil, records every certain/possible merge
	// decision the server reports, with its Definition-4 justification,
	// into the hash-chained audit log.
	Audit *audit.Log
	// Sharded resolves the instance by similarity-connected components
	// (core.ShardedEngine): resolution starts in the background at
	// construction under ShardOptions, and the merge and
	// maximal-solution endpoints serve the stitched results once ready.
	// Requests arriving before resolution completes wait under their own
	// deadline. Answer and explain endpoints always use the engine pool.
	Sharded      bool
	ShardOptions core.ShardOptions
	// Mutable accepts POST /v1/facts mutation batches: every applied
	// batch advances the served epoch, and readers keep the epoch they
	// started on. Without it the endpoint answers 403 and the instance
	// is read-only for its lifetime.
	Mutable bool
	// WAL makes Audit a write-ahead log for mutations: handleFacts
	// appends and fsyncs the mutation record before the new epoch is
	// published or acknowledged, and a failed append fails the request
	// (500) without publishing. Requires Audit (opened with
	// audit.Options{Durable: true} for real durability) and Mutable.
	WAL bool
	// InitialEpoch numbers the starting snapshot. Recovery passes the
	// last replayed epoch so the resumed lineage continues N+1, N+2, …
	// in step with the log. 0 is a fresh instance.
	InitialEpoch uint64
}

// DefaultCacheSize is the default response-cache bound.
const DefaultCacheSize = 1024

// DefaultMaxTimeout caps per-request deadlines unless configured.
const DefaultMaxTimeout = time.Minute

// maxQueryCache bounds the parsed-query cache (shared *cq.CQ values so
// repeated queries hit the session's prepared-plan cache).
const maxQueryCache = 512

// Server is the resolution server. Build one with New, mount Handler on
// an http.Server, and call Shutdown to drain.
//
// Every server — mutable or not — serves out of a core.MutableSession:
// read-only servers simply never apply a batch, so they stay on epoch 0
// forever. A request captures the current epochState once, up front, and
// runs entirely against it; a mutation arriving mid-request advances the
// served epoch without disturbing in-flight readers, whose snapshot (and
// therefore whose cache keys, interner and engines) is frozen.
type Server struct {
	cfg Config
	rec *obs.Registry

	// ms owns the epoch lineage; mutable gates POST /v1/facts.
	ms      *core.MutableSession
	mutable bool

	// cur is the served epoch. writeMu orders Apply with the store, so
	// concurrent mutations can never publish epochs out of order.
	cur     atomic.Pointer[epochState]
	writeMu sync.Mutex

	// pool is the worker-token semaphore: requests take a token, fork
	// their epoch's engine, and return the token when done.
	pool chan struct{}

	cache *responseCache

	// queries caches parsed ad-hoc queries by text, so repeated queries
	// share one *cq.CQ (and therefore one prepared plan) and parsing —
	// which interns fresh constants into a clone of the interner — stays
	// off the hot path.
	queryMu sync.Mutex
	queries map[string]*cq.CQ

	// baseCtx is the ancestor of every request context; abort cancels
	// it to cut in-flight searches short during a forced drain.
	baseCtx  context.Context
	abort    context.CancelFunc
	draining atomic.Bool
	inflight sync.WaitGroup

	// Request-scoped telemetry (telemetry.go). now and nextID are
	// replaceable from tests for deterministic golden output.
	access    *accessLogger
	audit     *audit.Log
	wal       bool // audit is a write-ahead log: mutation appends are fatal
	dropOnce  sync.Once
	inflightN atomic.Int64
	now       func() time.Time
	nextID    func() string

	mux *http.ServeMux
}

// New validates the configuration, builds the shared session and the
// worker pool, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil || cfg.Spec == nil || cfg.Sims == nil {
		return nil, fmt.Errorf("serve: Config.DB, Spec and Sims are required")
	}
	if cfg.WAL && cfg.Audit == nil {
		return nil, fmt.Errorf("serve: Config.WAL requires Config.Audit (the write-ahead log)")
	}
	if cfg.WAL && !cfg.Mutable {
		return nil, fmt.Errorf("serve: Config.WAL requires Config.Mutable (only mutations are write-ahead logged)")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.NewRegistry()
	}
	opts := core.Options{
		MaxStates:   cfg.MaxStates,
		Parallelism: cfg.Parallelism,
		Recorder:    rec,
	}
	var ms *core.MutableSession
	var err error
	if cfg.Sharded {
		ms, err = core.NewMutableShardedAt(cfg.DB, cfg.Spec, cfg.Sims, opts, cfg.ShardOptions, cfg.InitialEpoch)
	} else {
		ms, err = core.NewMutableAt(cfg.DB, cfg.Spec, cfg.Sims, opts, cfg.InitialEpoch)
	}
	if err != nil {
		return nil, err
	}
	baseCtx, abort := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		rec:     rec,
		ms:      ms,
		mutable: cfg.Mutable,
		pool:    make(chan struct{}, cfg.Workers),
		cache:   newResponseCache(cfg.CacheSize, rec),
		queries: make(map[string]*cq.CQ),
		baseCtx: baseCtx,
		abort:   abort,
		audit:   cfg.Audit,
		wal:     cfg.WAL,
		now:     time.Now,
		nextID:  defaultIDGen(),
	}
	if cfg.AccessLog != nil {
		s.access = &accessLogger{w: cfg.AccessLog}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.pool <- struct{}{}
	}
	rec.Gauge(obs.ServeWorkers, int64(cfg.Workers))
	s.cur.Store(s.newEpochState(ms.Snapshot()))
	rec.Gauge(obs.ServeEpoch, int64(cfg.InitialEpoch))

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/v1/merges/certain", s.mergesHandler("certain"))
	s.mux.HandleFunc("/v1/merges/possible", s.mergesHandler("possible"))
	s.mux.HandleFunc("/v1/solutions/maximal", s.handleMaximal)
	s.mux.HandleFunc("/v1/answers", s.handleAnswers)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/facts", s.handleFacts)
	return s, nil
}

// epochState is one served epoch: its snapshot plus the readiness
// signal of the background sharded resolution (closed immediately for
// monolithic servers). Result endpoints wait on ready under their own
// deadline; the resolution itself runs under the server-lifetime
// context, so no request's deadline can poison it for everyone else.
type epochState struct {
	snap  *core.EpochSnapshot
	ready chan struct{}
}

// newEpochState wraps a snapshot and, for sharded servers, starts its
// background resolution.
func (s *Server) newEpochState(snap *core.EpochSnapshot) *epochState {
	st := &epochState{snap: snap, ready: make(chan struct{})}
	if !s.cfg.Sharded {
		close(st.ready)
		return st
	}
	go func() {
		defer close(st.ready)
		if _, err := snap.PossibleMergesCtx(s.baseCtx); err != nil {
			s.rec.Inc(obs.ServeErrors, 1)
		}
	}()
	return st
}

// epochReady waits for the epoch's background resolution under the
// request's own deadline; result calls after it return immediately.
func (s *Server) epochReady(ctx context.Context, st *epochState) error {
	select {
	case <-st.ready:
		return nil
	case <-ctx.Done():
		return limits.Wrap(ctx.Err())
	}
}

// Handler returns the server's HTTP handler: the route mux wrapped in
// the request-scoped telemetry layer (request IDs, access log,
// per-endpoint latency histograms).
func (s *Server) Handler() http.Handler { return s.withTelemetry(s.mux) }

// DBFingerprint returns the currently served database's content hash.
func (s *Server) DBFingerprint() string { return s.cur.Load().snap.Fingerprint() }

// Epoch returns the currently served epoch.
func (s *Server) Epoch() uint64 { return s.cur.Load().snap.Epoch() }

// Stats snapshots the server's recorder.
func (s *Server) Stats() obs.Snapshot { return s.rec.Snapshot() }

// Shutdown drains the server: new requests are refused with 503
// immediately, in-flight requests run until ctx is done, then their
// contexts are cancelled (cutting searches short with a typed
// cancellation) and Shutdown waits for the handlers to return. The
// error is nil when every in-flight request completed within the grace
// period, ctx.Err() when the abort path fired.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.abort()
		<-done
		return ctx.Err()
	}
}

// --- request plumbing -------------------------------------------------

// acquire takes a worker token and forks the request's epoch engine,
// honoring request cancellation and drain while queued. Forks share the
// epoch's session (and so its prepared-plan caches); the fork itself is
// cheap and keeps every request's evaluation state private.
func (s *Server) acquire(ctx context.Context, st *epochState) (*core.Engine, error) {
	select {
	case <-s.pool:
		return st.snap.Engine().Fork(), nil
	default:
	}
	select {
	case <-s.pool:
		return st.snap.Engine().Fork(), nil
	case <-ctx.Done():
		return nil, limits.Wrap(ctx.Err())
	case <-s.baseCtx.Done():
		return nil, errDraining
	}
}

func (s *Server) release() { s.pool <- struct{}{} }

var errDraining = errors.New("server is shutting down")

// requestCtx derives the evaluation context for one request: child of
// the request's own context (client disconnect), cancelled by server
// abort, bounded by the effective deadline (request override capped by
// MaxTimeout, else the configured default).
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stopAbort := context.AfterFunc(s.baseCtx, cancel)
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		prev := cancel
		cancel = func() { tcancel(); prev() }
	}
	final := cancel
	return ctx, func() { stopAbort(); final() }
}

// writeJSON marshals v with a trailing newline. Marshal failures are a
// programming error; they surface as a 500 with a plain body.
func writeJSON(w http.ResponseWriter, status int, v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return nil
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	return body
}

// statusFor maps a task error to its HTTP status: 413 for an exhausted
// resource budget ("the instance is too large for the configured
// budget"), 504 for a deadline or client cancellation, 503 when the
// stop came from server drain, 500 otherwise.
func (s *Server) statusFor(err error) int {
	switch {
	case errors.Is(err, limits.ErrBudget):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, limits.ErrCanceled):
		if s.baseCtx.Err() != nil {
			return http.StatusServiceUnavailable
		}
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// endpoint wraps the shared request lifecycle: drain check, in-flight
// tracking, request counting, cache lookup, engine checkout, error
// mapping and cache fill. decode produces the canonical cache key (or
// a 400 error); task runs the reasoning problem against the captured
// epoch state st on a forked engine and fills resp (envelope cleared),
// returning the task error if any. resp must be a pointer to the
// endpoint's response struct with its Envelope addressable via env.
// The cache key includes st's fingerprint, so responses computed under
// an earlier epoch can never be served after a mutation changed the
// data.
func (s *Server) endpoint(w http.ResponseWriter, r *http.Request, name string,
	timeoutMS int, key string, st *epochState,
	task func(ctx context.Context, st *epochState, eng *core.Engine) error,
	resp any, env *Envelope) {

	meta := metaFrom(r.Context())
	if meta != nil {
		meta.endpoint = name
	}
	if s.draining.Load() {
		if meta != nil {
			meta.outcome = "draining"
		}
		writeJSON(w, http.StatusServiceUnavailable, Envelope{Error: errDraining.Error()})
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.rec.Inc(obs.ServeRequests, 1)
	sp := s.rec.Start(obs.SpanServeRequest)
	if meta != nil {
		sp.AttrStr("request_id", meta.id)
	}
	defer sp.AttrStr("endpoint", name).End()

	cacheKey := name + "\x00" + key + "\x00" + st.snap.Fingerprint()
	if body, ok := s.cache.get(cacheKey); ok {
		if meta != nil {
			meta.cache = "hit"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	if meta != nil {
		meta.cache = "miss"
	}

	ctx, cancel := s.requestCtx(r, timeoutMS)
	defer cancel()
	waitStart := s.now()
	eng, err := s.acquire(ctx, st)
	wait := s.now().Sub(waitStart)
	s.rec.Observe(obs.ServePoolWait, wait)
	if meta != nil {
		meta.poolWait = wait
	}
	if err != nil {
		if errors.Is(err, errDraining) {
			if meta != nil {
				meta.outcome = "draining"
			}
			writeJSON(w, http.StatusServiceUnavailable, Envelope{Error: errDraining.Error()})
			return
		}
		s.rec.Inc(obs.ServeInterrupted, 1)
		if meta != nil {
			meta.outcome = "interrupted"
		}
		writeJSON(w, s.statusFor(err), Envelope{Interrupted: true, Error: err.Error()})
		return
	}
	defer s.release()

	if err := task(ctx, st, eng); err != nil {
		status := s.statusFor(err)
		env.Error = err.Error()
		if status == http.StatusRequestEntityTooLarge || status == http.StatusGatewayTimeout ||
			status == http.StatusServiceUnavailable {
			// A budget or deadline stop: the payload filled so far is a
			// valid partial result, so return it under the marker.
			env.Interrupted = true
			s.rec.Inc(obs.ServeInterrupted, 1)
			if meta != nil {
				meta.outcome = "interrupted"
			}
		} else {
			s.rec.Inc(obs.ServeErrors, 1)
			if meta != nil {
				meta.outcome = "error"
			}
		}
		writeJSON(w, status, resp)
		return
	}
	if body := writeJSON(w, http.StatusOK, resp); body != nil {
		s.cache.put(cacheKey, body)
	}
}

// decodeBody decodes an optional JSON body into v. An empty body (e.g.
// a bare GET) leaves v at its zero value.
func decodeBody(r *http.Request, v any) error {
	if r.Body == nil {
		return nil
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return err
	}
	if len(strings.TrimSpace(string(raw))) == 0 {
		return nil
	}
	return json.Unmarshal(raw, v)
}

// --- endpoints --------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.cur.Load().snap
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Fingerprint: snap.Fingerprint(),
		Facts:       snap.DB().NumFacts(),
		Workers:     s.cfg.Workers,
		Epoch:       snap.Epoch(),
		Mutable:     s.mutable,
		Draining:    s.draining.Load(),
	})
}

// handleMetrics serves the Prometheus text exposition. Runtime gauges
// (pool occupancy, cache size, goroutines, heap) are refreshed at
// scrape time so they are current, not last-request-stale.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshRuntimeGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteProm(w, s.rec.Snapshot())
}

// handleMetricsJSON serves the raw snapshot (the pre-Prometheus
// /metrics payload, kept for scripts that consume the JSON schema).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	s.refreshRuntimeGauges()
	writeJSON(w, http.StatusOK, s.rec.Snapshot())
}

// mergesHandler serves /v1/merges/{certain,possible}.
func (s *Server) mergesHandler(semantics string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := decodeBody(r, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
			return
		}
		resp := &MergesResponse{Semantics: semantics, Merges: []MergePair{}}
		s.endpoint(w, r, "merges/"+semantics, req.TimeoutMS, "", s.cur.Load(),
			func(ctx context.Context, st *epochState, eng *core.Engine) error {
				var pairs []eqrel.Pair
				var err error
				switch {
				case s.cfg.Sharded:
					if err = s.epochReady(ctx, st); err != nil {
						return err
					}
					if semantics == "certain" {
						pairs, err = st.snap.CertainMergesCtx(ctx)
					} else {
						pairs, err = st.snap.PossibleMergesCtx(ctx)
					}
				case semantics == "certain":
					pairs, err = eng.CertainMergesCtx(ctx)
				default:
					pairs, err = eng.PossibleMergesCtx(ctx)
				}
				if err != nil {
					return err
				}
				in := st.snap.DB().Interner()
				resp.Merges = namePairs(in, pairs)
				resp.Count = len(resp.Merges)
				// Audit after the payload is complete, so recording
				// never alters the response.
				s.auditMerges(ctx, eng, in, metaFrom(r.Context()), semantics, pairs)
				return nil
			}, resp, &resp.Envelope)
	}
}

func (s *Server) handleMaximal(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
		return
	}
	resp := &SolutionsResponse{Solutions: []SolutionJSON{}}
	s.endpoint(w, r, "solutions/maximal", req.TimeoutMS, "", s.cur.Load(),
		func(ctx context.Context, st *epochState, eng *core.Engine) error {
			var ms []*eqrel.Partition
			var err error
			if s.cfg.Sharded {
				if err = s.epochReady(ctx, st); err != nil {
					return err
				}
				ms, err = st.snap.MaximalSolutionsCtx(ctx)
			} else {
				ms, err = eng.MaximalSolutionsCtx(ctx)
			}
			if err != nil {
				return err
			}
			in := st.snap.DB().Interner()
			for _, m := range ms {
				sol := SolutionJSON{Classes: [][]string{}}
				for _, cls := range m.NontrivialClasses() {
					names := make([]string, len(cls))
					for i, c := range cls {
						names[i] = in.Name(c)
					}
					sol.Classes = append(sol.Classes, names)
				}
				resp.Solutions = append(resp.Solutions, sol)
			}
			resp.Count = len(resp.Solutions)
			return nil
		}, resp, &resp.Envelope)
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	var req AnswersRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
		return
	}
	key, err := req.canonical()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: "query is required"})
		return
	}
	st := s.cur.Load()
	q, err := s.parseQuery(st, req.Query)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
		return
	}
	sem := req.Semantics
	if sem == "" {
		sem = "certain"
	}
	resp := &AnswersResponse{Semantics: sem, Query: req.Query}
	s.endpoint(w, r, "answers", req.TimeoutMS, key, st,
		func(ctx context.Context, st *epochState, eng *core.Engine) error {
			var tuples [][]db.Const
			var err error
			if sem == "certain" {
				tuples, err = eng.CertainAnswersCtx(ctx, q)
			} else {
				tuples, err = eng.PossibleAnswersCtx(ctx, q)
			}
			if err != nil {
				return err
			}
			if len(q.Head) == 0 {
				yes := len(tuples) > 0
				resp.Boolean = &yes
				resp.Count = 0
				return nil
			}
			in := st.snap.DB().Interner()
			resp.Answers = make([][]string, len(tuples))
			for i, t := range tuples {
				names := make([]string, len(t))
				for j, c := range t {
					names[j] = in.Name(c)
				}
				resp.Answers[i] = names
			}
			resp.Count = len(resp.Answers)
			return nil
		}, resp, &resp.Envelope)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
		return
	}
	key, err := req.canonical()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
		return
	}
	st := s.cur.Load()
	in := st.snap.DB().Interner()
	a, ok := in.Lookup(req.A)
	if !ok {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: fmt.Sprintf("constant %q not in the database", req.A)})
		return
	}
	b, ok := in.Lookup(req.B)
	if !ok {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: fmt.Sprintf("constant %q not in the database", req.B)})
		return
	}
	if a == b {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: "the two constants must differ"})
		return
	}
	resp := &ExplainResponse{Pair: MergePair{A: req.A, B: req.B}}
	s.endpoint(w, r, "explain", req.TimeoutMS, key, st,
		func(ctx context.Context, st *epochState, eng *core.Engine) error {
			x, err := eng.ExplainMergeCtx(ctx, a, b)
			if err != nil {
				return err
			}
			resp.Status = x.Status.String()
			resp.Text = x.Format(in)
			s.auditExplain(eng, in, metaFrom(r.Context()), x)
			return nil
		}, resp, &resp.Envelope)
}

// handleFacts serves POST /v1/facts: apply one mutation batch and
// advance the served epoch. Mutations bypass the endpoint helper — they
// are never cached, never pooled, and must publish the new epoch under
// the write lock so concurrent batches can't store epochs out of order.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	meta := metaFrom(r.Context())
	if meta != nil {
		meta.endpoint = "facts"
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, Envelope{Error: "POST required"})
		return
	}
	if !s.mutable {
		writeJSON(w, http.StatusForbidden, Envelope{Error: "server is read-only (start with mutations enabled to accept /v1/facts)"})
		return
	}
	if s.draining.Load() {
		if meta != nil {
			meta.outcome = "draining"
		}
		writeJSON(w, http.StatusServiceUnavailable, Envelope{Error: errDraining.Error()})
		return
	}
	var req FactsRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.rec.Inc(obs.ServeRequests, 1)

	batch := core.Batch{Insert: factSpecs(req.Insert), Retract: factSpecs(req.Retract)}
	s.writeMu.Lock()
	// The mutation record is written inside ApplyDurable's precommit
	// hook: after the next epoch is fully built, before it is published.
	// In WAL mode the append fsyncs and a failure aborts the whole
	// apply — the server stays on the previous epoch and the client gets
	// a 500, so a 200 always means "recorded durably, then published".
	// The hook also keeps the log in epoch order under writeMu, which
	// replay depends on. In non-WAL mode the append is best-effort and
	// the hook never fails the batch.
	res, snap, err := s.ms.ApplyDurable(batch, func(res core.ApplyResult) error {
		return s.auditMutation(meta, req, res)
	})
	if err != nil {
		s.writeMu.Unlock()
		s.rec.Inc(obs.ServeErrors, 1)
		if errors.Is(err, errWAL) {
			if meta != nil {
				meta.outcome = "error"
			}
			writeJSON(w, http.StatusInternalServerError, Envelope{Error: err.Error()})
			return
		}
		if meta != nil {
			meta.outcome = "bad_request"
		}
		writeJSON(w, http.StatusBadRequest, Envelope{Error: err.Error()})
		return
	}
	s.cur.Store(s.newEpochState(snap))
	s.writeMu.Unlock()

	s.rec.Inc(obs.ServeMutations, 1)
	s.rec.Gauge(obs.ServeEpoch, int64(res.Epoch))
	writeJSON(w, http.StatusOK, FactsResponse{
		Epoch:       res.Epoch,
		Inserted:    res.Inserted,
		Retracted:   res.Retracted,
		Fingerprint: res.Fingerprint,
		DirtyShards: res.DirtyShards,
	})
}

// factSpecs converts wire facts to db fact specs.
func factSpecs(fs []FactJSON) []db.FactSpec {
	if len(fs) == 0 {
		return nil
	}
	out := make([]db.FactSpec, len(fs))
	for i, f := range fs {
		out[i] = db.FactSpec{Rel: f.Rel, Args: f.Args}
	}
	return out
}

// namePairs renders merge pairs with constant names.
func namePairs(in *db.Interner, pairs []eqrel.Pair) []MergePair {
	out := make([]MergePair, len(pairs))
	for i, p := range pairs {
		out[i] = MergePair{A: in.Name(p.A), B: in.Name(p.B)}
	}
	return out
}

// parseQuery parses (and caches) an ad-hoc conjunctive query against
// the request's epoch. Parsing interns any fresh query constants into a
// clone of the epoch's interner, so concurrent requests never mutate
// shared state; the cached *cq.CQ is shared so the session's
// prepared-plan cache hits on repeat queries. The cache key includes the
// epoch: a later epoch may intern a constant the query names under a
// different id than the parse-time clone assigned, so parses must not
// outlive their epoch.
func (s *Server) parseQuery(st *epochState, text string) (*cq.CQ, error) {
	d := st.snap.DB()
	key := strconv.FormatUint(st.snap.Epoch(), 10) + "\x00" + text
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	if q, ok := s.queries[key]; ok {
		return q, nil
	}
	q, err := rules.ParseQuery(text, d.Schema(), d.Interner().Clone(), s.cfg.Sims)
	if err != nil {
		return nil, err
	}
	if len(s.queries) >= maxQueryCache {
		// Rare: drop the whole cache rather than tracking recency for a
		// bounded, tiny map.
		s.queries = make(map[string]*cq.CQ)
	}
	s.queries[key] = q
	return q, nil
}
