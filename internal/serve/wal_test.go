package serve

// wal_test.go pins the write-ahead contract at the HTTP layer: the
// mutation record reaches the log before the epoch publishes, a failed
// WAL append is a 500 with no epoch advance, best-effort audit drops
// are counted, and InitialEpoch resumes a recovered lineage.

import (
	"bytes"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/obs"
)

// epochProbe is an audit sink that records the server's *published*
// epoch at the moment each audit write lands — the observable ordering
// of WAL append vs. epoch publish.
type epochProbe struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	epochAt []uint64
	epoch   func() uint64
}

func (p *epochProbe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epochAt = append(p.epochAt, p.epoch())
	return p.buf.Write(b)
}

func TestWALAppendsBeforePublish(t *testing.T) {
	in := loadFig1(t)
	probe := &epochProbe{}
	var s *Server
	probe.epoch = func() uint64 { return s.Epoch() }
	s, ts := newTestServer(t, in, func(c *Config) {
		c.Mutable = true
		c.WAL = true
		c.Audit = audit.New(probe)
	})

	for i := 1; i <= 3; i++ {
		code, fr := postFacts(t, ts, FactsRequest{
			Insert:  []FactJSON{{Rel: "Author", Args: []string{"a9", "x@y.z", "Oslo"}}},
			Retract: []FactJSON{{Rel: "Author", Args: []string{"a9", "x@y.z", "Oslo"}}},
		})
		if code != http.StatusOK {
			t.Fatalf("batch %d: status %d (%+v)", i, code, fr)
		}
		if fr.Epoch != uint64(i) {
			t.Fatalf("batch %d produced epoch %d", i, fr.Epoch)
		}
	}

	probe.mu.Lock()
	defer probe.mu.Unlock()
	if len(probe.epochAt) != 3 {
		t.Fatalf("%d audit writes for 3 mutations", len(probe.epochAt))
	}
	for i, at := range probe.epochAt {
		// Record for epoch i+1 must be written while the server still
		// serves epoch i: durable strictly before visible.
		if at != uint64(i) {
			t.Errorf("record %d written at published epoch %d, want %d (append must precede publish)",
				i, at, i)
		}
	}
	recs, err := audit.VerifyRecords(bytes.NewReader(probe.buf.Bytes()))
	if err != nil {
		t.Fatalf("WAL does not verify: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("WAL holds %d records, want 3", len(recs))
	}
}

// brokenSink fails every write.
type brokenSink struct{}

func (brokenSink) Write([]byte) (int, error) { return 0, errors.New("disk gone") }

func TestWALFailureIs500AndNoPublish(t *testing.T) {
	in := loadFig1(t)
	s, ts := newTestServer(t, in, func(c *Config) {
		c.Mutable = true
		c.WAL = true
		c.Audit = audit.New(brokenSink{})
	})
	fpBefore := s.DBFingerprint()

	for i := 0; i < 2; i++ { // second attempt exercises the poisoned log
		var env Envelope
		code, _ := post(t, ts, "/v1/facts", FactsRequest{
			Insert: []FactJSON{{Rel: "Author", Args: []string{"a9", "x@y.z", "Oslo"}}},
		}, &env)
		if code != http.StatusInternalServerError {
			t.Fatalf("attempt %d: WAL failure returned %d, want 500", i, code)
		}
		if !strings.Contains(env.Error, "write-ahead") {
			t.Errorf("attempt %d: error %q does not name the WAL", i, env.Error)
		}
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("failed WAL writes advanced the epoch to %d", got)
	}
	if got := s.DBFingerprint(); got != fpBefore {
		t.Fatal("failed WAL writes changed the served fingerprint")
	}
	// The unlogged batch must be invisible to readers too.
	var hr HealthResponse
	if code, _ := post(t, ts, "/healthz", nil, &hr); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if hr.Epoch != 0 || hr.Fingerprint != fpBefore {
		t.Fatalf("healthz after failed WAL write: %+v", hr)
	}
}

// TestAuditDropCounted: without WAL mode the same failure is
// best-effort — the mutation succeeds and the lost record is counted.
func TestAuditDropCounted(t *testing.T) {
	in := loadFig1(t)
	s, ts := newTestServer(t, in, func(c *Config) {
		c.Mutable = true
		c.Audit = audit.New(brokenSink{})
	})
	code, fr := postFacts(t, ts, FactsRequest{
		Insert: []FactJSON{{Rel: "Author", Args: []string{"a9", "x@y.z", "Oslo"}}},
	})
	if code != http.StatusOK || fr.Epoch != 1 {
		t.Fatalf("best-effort mutation failed: %d %+v", code, fr)
	}
	snap := s.Stats()
	if got := snap.Counter(obs.ServeAuditDropped); got < 1 {
		t.Fatalf("serve.audit.dropped = %d, want >= 1", got)
	}
	if got := snap.Counter(obs.ServeAuditRecords); got != 0 {
		t.Fatalf("serve.audit.records = %d on a broken sink", got)
	}
}

func TestInitialEpochResumes(t *testing.T) {
	in := loadFig1(t)
	s, ts := newTestServer(t, in, func(c *Config) {
		c.Mutable = true
		c.InitialEpoch = 5
	})
	if got := s.Epoch(); got != 5 {
		t.Fatalf("initial epoch = %d, want 5", got)
	}
	code, fr := postFacts(t, ts, FactsRequest{
		Insert: []FactJSON{{Rel: "Author", Args: []string{"a9", "x@y.z", "Oslo"}}},
	})
	if code != http.StatusOK || fr.Epoch != 6 {
		t.Fatalf("first batch after resume: %d, epoch %d; want 200, 6", code, fr.Epoch)
	}
}

func TestWALConfigValidation(t *testing.T) {
	in := loadFig1(t)
	base := Config{DB: in.db, Spec: in.spec, Sims: in.sims}

	cfg := base
	cfg.Mutable = true
	cfg.WAL = true
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "Audit") {
		t.Fatalf("WAL without Audit accepted: %v", err)
	}

	cfg = base
	cfg.WAL = true
	cfg.Audit = audit.New(&bytes.Buffer{})
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "Mutable") {
		t.Fatalf("WAL without Mutable accepted: %v", err)
	}
}
