package serve

// telemetry.go is the request-scoped observability layer: X-Request-ID
// assignment, the structured access log, per-endpoint latency
// histograms, live runtime gauges, and the merge-decision audit hooks.
// The middleware wraps every route, so /healthz and /metrics appear in
// the access log and latency histograms alongside the reasoning
// endpoints.
//
// Telemetry never changes responses: request IDs ride in headers, the
// access and audit logs are side channels, and best-effort audit
// failures are dropped — counted under serve.audit.dropped and logged
// once, never failing the request. A differential test pins that bodies
// with telemetry on and off are byte-identical. The one exception is
// WAL mode, where the mutation record IS the durability contract:
// auditMutation failures there surface as errWAL and fail the request.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eqrel"
	"repro/internal/obs"
)

// RequestIDHeader carries the request ID in both directions: honored on
// requests (so upstream proxies correlate), always set on responses.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds client-supplied request IDs.
const maxRequestIDLen = 64

// reqMeta is the per-request telemetry record, threaded through the
// request context so the endpoint plumbing can annotate what the
// middleware logs.
type reqMeta struct {
	id       string
	endpoint string        // endpoint name, set by Server.endpoint
	cache    string        // "hit", "miss", or "" (no cache lookup)
	outcome  string        // "ok", "interrupted", "error", "draining", "bad_request"
	poolWait time.Duration // time queued for a pooled engine
}

type reqMetaKey struct{}

// metaFrom returns the request's telemetry record, or nil outside the
// middleware (direct handler tests).
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(reqMetaKey{}).(*reqMeta)
	return m
}

// statusWriter captures the response status and size for the access
// log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// accessRecord is the JSONL schema of one access-log line.
type accessRecord struct {
	Time      string  `json:"ts"`
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Endpoint  string  `json:"endpoint,omitempty"`
	Status    int     `json:"status"`
	DurMS     float64 `json:"dur_ms"`
	Bytes     int64   `json:"bytes"`
	// Cache is the response-cache disposition: "hit", "miss", or absent
	// when the route has no cache.
	Cache string `json:"cache,omitempty"`
	// Outcome distinguishes budget/interrupt endings ("interrupted")
	// from clean ("ok"), failed ("error"), refused ("draining") and
	// malformed ("bad_request") requests.
	Outcome string `json:"outcome,omitempty"`
	// PoolWaitMS is the time spent queued for a pooled engine.
	PoolWaitMS float64 `json:"pool_wait_ms,omitempty"`
}

// accessLogger serializes JSONL access records onto one writer.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *accessLogger) log(rec accessRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		return // telemetry must never fail a request
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(b, '\n'))
}

// withTelemetry wraps the route mux with the request-scoped layer.
func (s *Server) withTelemetry(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		meta := &reqMeta{id: s.requestID(r), outcome: "ok"}
		w.Header().Set(RequestIDHeader, meta.id)
		sw := &statusWriter{ResponseWriter: w}
		s.rec.Gauge(obs.ServeInflight, s.inflightN.Add(1))
		defer func() {
			s.rec.Gauge(obs.ServeInflight, s.inflightN.Add(-1))
			dur := s.now().Sub(start)
			ep := meta.endpoint
			if ep == "" {
				ep = strings.Trim(r.URL.Path, "/")
			}
			if ep != "" {
				s.rec.Observe(obs.ServeRequestPrefix+ep, dur)
			}
			if s.access != nil {
				status := sw.status
				if status == 0 {
					status = http.StatusOK
				}
				if meta.outcome == "ok" {
					switch {
					case status == http.StatusBadRequest:
						meta.outcome = "bad_request"
					case status >= 500:
						meta.outcome = "error"
					}
				}
				s.access.log(accessRecord{
					Time:       start.UTC().Format(time.RFC3339Nano),
					RequestID:  meta.id,
					Method:     r.Method,
					Path:       r.URL.Path,
					Endpoint:   meta.endpoint,
					Status:     status,
					DurMS:      float64(dur) / float64(time.Millisecond),
					Bytes:      sw.bytes,
					Cache:      meta.cache,
					Outcome:    meta.outcome,
					PoolWaitMS: float64(meta.poolWait) / float64(time.Millisecond),
				})
			}
		}()
		h.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqMetaKey{}, meta)))
	})
}

// requestID honors a sane client-supplied X-Request-ID, else mints one.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); id != "" && len(id) <= maxRequestIDLen && isPrintableASCII(id) {
		return id
	}
	return s.nextID()
}

func isPrintableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x21 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

// defaultIDGen mints process-unique request IDs: a per-process epoch
// plus a sequence number.
func defaultIDGen() func() string {
	epoch := time.Now().UnixNano()
	var seq atomic.Int64
	return func() string {
		return fmt.Sprintf("%012x-%06d", epoch&0xffffffffffff, seq.Add(1))
	}
}

// refreshRuntimeGauges publishes the point-in-time health gauges read
// at scrape time: engine-pool occupancy, response-cache size, and
// process runtime stats.
func (s *Server) refreshRuntimeGauges() {
	s.rec.Gauge(obs.ServePoolInUse, int64(s.cfg.Workers-len(s.pool)))
	s.rec.Gauge(obs.ServeCacheSize, int64(s.cache.len()))
	s.rec.Gauge(obs.ServeEpoch, int64(s.cur.Load().snap.Epoch()))
	s.rec.Gauge(obs.ServeGoroutines, int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.rec.Gauge(obs.ServeHeapBytes, int64(ms.HeapAlloc))
}

// --- audit hooks ------------------------------------------------------

// errWAL marks a failed write-ahead append: the mutation was NOT made
// durable, so the request must fail without publishing the epoch.
var errWAL = errors.New("write-ahead log append failed")

// auditDrop accounts for n best-effort audit records discarded by a
// write failure: counted in /metrics, and the first drop per process is
// logged with its cause (later ones would repeat the same broken-sink
// story at line rate).
func (s *Server) auditDrop(n int64, err error) {
	if n <= 0 {
		return
	}
	s.rec.Inc(obs.ServeAuditDropped, n)
	s.dropOnce.Do(func() {
		log.Printf("serve: audit append failed, dropping records (first failure: %v)", err)
	})
}

// auditMerges records the merge decisions of one merges/{certain,
// possible} response. Certain merges are justified against one witness
// solution (they belong to every maximal solution, so any solution
// works); possible merges are justified against the enumerated solution
// that first contains them. Best-effort by design: an audit failure
// never fails the request, and the response is already fully built —
// but every record lost to a write error is counted as dropped.
func (s *Server) auditMerges(ctx context.Context, eng *core.Engine, in *db.Interner,
	meta *reqMeta, decision string, pairs []eqrel.Pair) {

	if s.audit == nil || len(pairs) == 0 {
		return
	}
	just := make(map[eqrel.Pair]*core.Justification, len(pairs))
	if decision == audit.DecisionCertain {
		if E, ok, err := eng.GreedySolutionCtx(ctx); err == nil && ok {
			for _, p := range pairs {
				if j, err := eng.Justify(E, p.A, p.B); err == nil {
					just[p] = j
				}
			}
		}
	} else {
		// One enumeration pass justifies every pair against its first
		// witness; pending tracks the pairs still without one.
		pending := make(map[eqrel.Pair]bool, len(pairs))
		for _, p := range pairs {
			pending[p] = true
		}
		_ = eng.SolutionsCtx(ctx, func(E *eqrel.Partition) bool {
			for p := range pending {
				if E.Same(p.A, p.B) {
					if j, err := eng.Justify(E, p.A, p.B); err == nil {
						just[p] = j
					}
					delete(pending, p)
				}
			}
			return len(pending) == 0
		})
	}
	for i, p := range pairs {
		rec := audit.Record{
			Decision: decision,
			A:        in.Name(p.A),
			B:        in.Name(p.B),
		}
		if meta != nil {
			rec.RequestID = meta.id
			rec.Endpoint = meta.endpoint
		}
		if j := just[p]; j != nil {
			rec.Rule = lastRule(j)
			rec.Justification = justLines(j, in)
		}
		if err := s.audit.Append(rec); err != nil {
			// This record and the rest of the batch are lost (the log is
			// poisoned after a failed write); count them all.
			s.auditDrop(int64(len(pairs)-i), err)
			return
		}
		s.rec.Inc(obs.ServeAuditRecords, 1)
	}
}

// auditExplain records the decision behind one /v1/explain response
// when the pair is mergeable (certain or possible); impossible pairs
// are not merge decisions and are not recorded.
func (s *Server) auditExplain(eng *core.Engine, in *db.Interner, meta *reqMeta, x *core.MergeExplanation) {
	if s.audit == nil {
		return
	}
	var decision string
	j := x.Justification
	switch x.Status {
	case core.Certain:
		decision = audit.DecisionCertain
	case core.PossibleOnly:
		decision = audit.DecisionPossible
		if j == nil && x.Witness != nil {
			j, _ = eng.Justify(x.Witness, x.Pair.A, x.Pair.B)
		}
	default:
		return
	}
	rec := audit.Record{
		Decision: decision,
		A:        in.Name(x.Pair.A),
		B:        in.Name(x.Pair.B),
	}
	if meta != nil {
		rec.RequestID = meta.id
		rec.Endpoint = meta.endpoint
	}
	if j != nil {
		rec.Rule = lastRule(j)
		rec.Justification = justLines(j, in)
	}
	if err := s.audit.Append(rec); err != nil {
		s.auditDrop(1, err)
	} else {
		s.rec.Inc(obs.ServeAuditRecords, 1)
	}
}

// auditMutation records one applied fact batch: the facts by name, the
// epoch produced, and the post-batch database fingerprint. The
// fingerprint makes the log replayable as an integrity check — re-apply
// the recorded batches to the starting database and every recorded
// fingerprint must reproduce (laced -verify-audit -data and -recover do
// exactly this). It runs as ApplyDurable's precommit hook, before the
// epoch publishes. In WAL mode a failed append (or fsync) returns
// errWAL, aborting the apply — the durability contract. Otherwise it is
// best-effort like the merge hooks: failures drop the record, count it,
// and never fail the mutation.
func (s *Server) auditMutation(meta *reqMeta, req FactsRequest, res core.ApplyResult) error {
	if s.audit == nil {
		return nil
	}
	rec := audit.Record{
		Op:            audit.OpMutate,
		Insert:        factLines(req.Insert),
		Retract:       factLines(req.Retract),
		Epoch:         res.Epoch,
		DBFingerprint: res.Fingerprint,
	}
	if meta != nil {
		rec.RequestID = meta.id
		rec.Endpoint = meta.endpoint
	}
	start := s.now()
	err := s.audit.Append(rec)
	s.rec.Observe(obs.ServeWALAppend, s.now().Sub(start))
	if err != nil {
		if s.wal {
			return fmt.Errorf("%w: %v", errWAL, err)
		}
		s.auditDrop(1, err)
		return nil
	}
	s.rec.Inc(obs.ServeAuditRecords, 1)
	return nil
}

// factLines renders wire facts as relation-name-first string rows.
func factLines(fs []FactJSON) [][]string {
	if len(fs) == 0 {
		return nil
	}
	out := make([][]string, len(fs))
	for i, f := range fs {
		row := make([]string, 0, len(f.Args)+1)
		row = append(row, f.Rel)
		row = append(row, f.Args...)
		out[i] = row
	}
	return out
}

// justLines renders a justification as one line per Definition-4 step.
func justLines(j *core.Justification, in *db.Interner) []string {
	lines := strings.Split(strings.TrimRight(j.Format(in), "\n"), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSpace(l)
	}
	return lines
}

// lastRule returns the rule of the final rule-application step — the
// application that concluded the derivation.
func lastRule(j *core.Justification) string {
	for i := len(j.Steps) - 1; i >= 0; i-- {
		if j.Steps[i].Rule != "" {
			return j.Steps[i].Rule
		}
	}
	return ""
}
