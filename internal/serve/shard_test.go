package serve

// shard_test.go: end-to-end coverage of Config.Sharded — the merge and
// maximal-solution endpoints must return byte-identical payloads from a
// sharded server and a monolithic one, and the shard metrics must land
// in the registry.

import (
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// TestShardedEndpointsDifferential: every decision endpoint agrees
// between a sharded and a monolithic server over both fixtures.
func TestShardedEndpointsDifferential(t *testing.T) {
	for _, fixture := range []struct {
		name string
		load func(testing.TB) instance
	}{
		{"fig1", loadFig1},
		{"bib", func(tb testing.TB) instance { return loadBib(tb.(*testing.T)) }},
	} {
		t.Run(fixture.name, func(t *testing.T) {
			_, mono := newTestServer(t, fixture.load(t), nil)
			_, sharded := newTestServer(t, fixture.load(t), func(cfg *Config) {
				cfg.Sharded = true
			})
			for _, path := range []string{
				"/v1/merges/certain",
				"/v1/merges/possible",
				"/v1/solutions/maximal",
			} {
				wantStatus, want := post(t, mono, path, nil, nil)
				gotStatus, got := post(t, sharded, path, nil, nil)
				if wantStatus != gotStatus || string(want) != string(got) {
					t.Errorf("%s: monolithic (%d) %s vs sharded (%d) %s",
						path, wantStatus, want, gotStatus, got)
				}
			}
		})
	}
}

// TestShardedMetrics: resolution records the shard gauges into the
// server's registry.
func TestShardedMetrics(t *testing.T) {
	rec := obs.NewRegistry()
	s, ts := newTestServer(t, loadFig1(t), func(cfg *Config) {
		cfg.Sharded = true
		cfg.Recorder = rec
	})
	if status, body := post(t, ts, "/v1/merges/certain", nil, nil); status != 200 {
		t.Fatalf("status %d body %s", status, body)
	}
	snap := s.Stats()
	if snap.GaugeValue(obs.CoreShardRounds) < 1 {
		t.Errorf("shard rounds gauge = %d, want >= 1", snap.GaugeValue(obs.CoreShardRounds))
	}
	if snap.Counter(obs.CoreShardSolves) < 1 {
		t.Errorf("shard solves counter = %d, want >= 1", snap.Counter(obs.CoreShardSolves))
	}
}

var _ = httptest.NewServer // keep the import stable under edits
