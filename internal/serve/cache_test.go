package serve

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/obs"
)

func TestResponseCacheLRU(t *testing.T) {
	rec := obs.NewRegistry()
	c := newResponseCache(3, rec)

	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 becomes least recently used.
	if body, ok := c.get("k0"); !ok || !bytes.Equal(body, []byte{0}) {
		t.Fatalf("get k0 = %v, %v", body, ok)
	}
	c.put("k3", []byte{3})
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived eviction, want LRU out")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if c.len() != 3 {
		t.Errorf("len = %d, want 3", c.len())
	}
	snap := rec.Snapshot()
	if snap.Counter(obs.ServeCacheEvictions) != 1 {
		t.Errorf("evictions = %d, want 1", snap.Counter(obs.ServeCacheEvictions))
	}
	if snap.Counter(obs.ServeCacheHits) != 4 || snap.Counter(obs.ServeCacheMisses) != 1 {
		t.Errorf("hits/misses = %d/%d, want 4/1",
			snap.Counter(obs.ServeCacheHits), snap.Counter(obs.ServeCacheMisses))
	}
}

func TestResponseCacheUpdateExisting(t *testing.T) {
	c := newResponseCache(2, nil)
	c.put("k", []byte("old"))
	c.put("k", []byte("new"))
	if body, ok := c.get("k"); !ok || string(body) != "new" {
		t.Errorf("get after overwrite = %q, %v", body, ok)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

func TestResponseCacheDisabled(t *testing.T) {
	var c *responseCache // newResponseCache(max<1) returns nil
	if got := newResponseCache(0, nil); got != nil {
		t.Error("max 0 should disable the cache")
	}
	c.put("k", []byte("v")) // must not panic
	if _, ok := c.get("k"); ok {
		t.Error("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Error("nil cache has nonzero len")
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := fixtures.New(), fixtures.New()
	fa, fb := Fingerprint(a.DB), Fingerprint(b.DB)
	if fa != fb {
		t.Errorf("same instance, different fingerprints: %s vs %s", fa, fb)
	}
	// The bib testdata is the Figure 1 instance in file form; parsing it
	// (different insertion order, different interner ids) must reproduce
	// the exact same content hash.
	bib := loadBib(t)
	if got := Fingerprint(bib.db); got != fa {
		t.Errorf("bib file parse fingerprint %s != fixture fingerprint %s", got, fa)
	}
	// Any content change moves the hash.
	c := fixtures.New()
	c.DB.MustInsert("Author", "a99", "fresh@example.org", "Nowhere")
	if got := Fingerprint(c.DB); got == fa {
		t.Error("fingerprint unchanged after inserting a fact")
	}
}
