package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// wire is one request form of the randomized differential workload:
// an endpoint plus a JSON body (empty for the parameterless ones).
type wire struct {
	path string
	body string
}

// workload returns the request forms the concurrent clients draw from.
// Everything here succeeds with a 200, so every response has an oracle
// byte string to compare against.
func workload() []wire {
	return []wire{
		{"/v1/merges/certain", ""},
		{"/v1/merges/possible", ""},
		{"/v1/solutions/maximal", ""},
		{"/v1/answers", `{"query":"(x) : Conference(x,n,y), Chair(x,a)"}`},
		{"/v1/answers", `{"query":"(x) : Conference(x,n,y), Chair(x,a)","semantics":"possible"}`},
		{"/v1/answers", `{"query":"Author(x,\"mnk@tku.jp\",u), Author(x,\"mnk@gm.com\",u2)","semantics":"possible"}`},
		{"/v1/answers", `{"query":"(p,x) : Wrote(p,x,n), Author(x,e,u)"}`},
		{"/v1/explain", `{"a":"a1","b":"a2"}`},
		{"/v1/explain", `{"a":"p4","b":"p5"}`},
		{"/v1/explain", `{"a":"c3","b":"c4"}`},
	}
}

func fire(t testing.TB, client *http.Client, url string, w wire) (int, []byte) {
	t.Helper()
	var body io.Reader
	if w.body != "" {
		body = bytes.NewReader([]byte(w.body))
	}
	resp, err := client.Post(url+w.path, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestConcurrentClientsMatchSequentialOracle is the differential test
// the issue pins: randomized concurrent clients against a parallel,
// pooled server must produce responses byte-identical to a sequential
// (one worker, parallelism 1, cache off) oracle server — with the
// response cache both on and off.
func TestConcurrentClientsMatchSequentialOracle(t *testing.T) {
	in := loadBib(t)

	// Sequential oracle: one worker, sequential search, no cache.
	_, ots := newTestServer(t, loadBib(t), func(c *Config) {
		c.Workers = 1
		c.Parallelism = 1
		c.CacheSize = -1
	})
	oracle := make(map[wire][]byte)
	for _, w := range workload() {
		code, body := fire(t, http.DefaultClient, ots.URL, w)
		if code != http.StatusOK {
			t.Fatalf("oracle %s %s: status %d body %s", w.path, w.body, code, body)
		}
		oracle[w] = body
	}

	for _, mode := range []struct {
		name  string
		cache int
	}{{"cache-on", DefaultCacheSize}, {"cache-off", -1}} {
		t.Run(mode.name, func(t *testing.T) {
			_, ts := newTestServer(t, in, func(c *Config) {
				c.Workers = 4
				c.CacheSize = mode.cache
			})

			const clients = 8
			const perClient = 20
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for i := 0; i < clients; i++ {
				rng := rand.New(rand.NewSource(int64(i)*7919 + 17))
				wg.Add(1)
				go func() {
					defer wg.Done()
					forms := workload()
					for j := 0; j < perClient; j++ {
						w := forms[rng.Intn(len(forms))]
						code, body := fire(t, http.DefaultClient, ts.URL, w)
						if code != http.StatusOK {
							t.Errorf("%s %s: status %d", w.path, w.body, code)
							return
						}
						if !bytes.Equal(body, oracle[w]) {
							t.Errorf("%s %s: response differs from sequential oracle\ngot:  %s\nwant: %s",
								w.path, w.body, body, oracle[w])
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
		})
	}
}

// TestShutdownDrainsInFlight: a long request admitted before Shutdown
// is cancelled by the abort path when the grace period lapses, the
// handler still answers (with the interrupted marker), and Shutdown
// returns. Afterward no handler goroutines remain.
func TestShutdownDrainsInFlight(t *testing.T) {
	in := loadBib(t)
	s, err := New(Config{DB: in.db, Spec: in.spec, Sims: in.sims, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()

	// Occupy both workers with requests that cannot finish in 10ms of
	// grace: no server deadline, large instance, but the client keeps
	// the connection open so only server abort can stop them.
	type result struct {
		code int
		body []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/solutions/maximal", "application/json", nil)
			if err != nil {
				results <- result{}
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			results <- result{resp.StatusCode, raw}
		}()
	}
	// Give the requests time to be admitted (inflight counted).
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err = s.Shutdown(ctx)

	for i := 0; i < 2; i++ {
		r := <-results
		switch r.code {
		case http.StatusOK:
			// The search beat the drain; fine.
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			var env Envelope
			if jsonErr := json.Unmarshal(r.body, &env); jsonErr != nil || !env.Interrupted {
				t.Errorf("aborted request body %s: want interrupted envelope", r.body)
			}
		case 0:
			t.Error("in-flight request got no response at all")
		default:
			t.Errorf("in-flight request status = %d", r.code)
		}
	}
	if err != nil && err != context.DeadlineExceeded {
		t.Errorf("Shutdown error = %v", err)
	}

	// Leak check: handler and search goroutines must wind down. Close
	// the test frontend and the client's kept-alive connections first so
	// only server-side leaks would remain.
	ts.Close()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 || time.Now().After(deadline) {
			if n > before+2 {
				t.Errorf("goroutines: %d before, %d after drain", before, n)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPoolQueueing: more concurrent requests than workers all complete
// (excess requests queue on the pool rather than failing).
func TestPoolQueueing(t *testing.T) {
	in := loadFig1(t)
	_, ts := newTestServer(t, in, func(c *Config) {
		c.Workers = 1
		c.CacheSize = -1
	})
	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = fire(t, http.DefaultClient, ts.URL, wire{path: "/v1/merges/possible"})
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d: status %d", i, code)
		}
	}
}
